//! The replicated serving tier: a fleet of enclave replicas behind
//! the shard router.
//!
//! PR 6 sharded serving *within* one enclave: one reap→decrypt→serve→
//! seal→send pipeline per socket, connections pinned to shards. This
//! module lifts the same structure one level: a [`FleetKvs`] owns a
//! [`Fleet`] of N enclave replicas, and the
//! [`ShardMap`] router gains a third hop — connection → shard →
//! **owning replica**. Each replica runs the full pipeline over only
//! its owned slice of the shared socket set
//! ([`ServerIo::recv_batch_on`]), so per-connection FIFO order is a
//! per-shard property exactly as before, just with shards partitioned
//! across enclaves instead of merged into one.
//!
//! # Failover (kill at a fence)
//!
//! Replica death is modeled at sub-batch fences — the only points
//! where the pipeline holds no half-served requests. [`FleetKvs::kill`]
//! runs the fence protocol:
//!
//! 1. the victim flushes pending sends and (when SUVM-backed)
//!    [`quiesces`](Suvm::quiesce) its secure memory — every reply it
//!    ever reaped is on the wire, every dirty page sealed home;
//! 2. it seals a portable [`Snapshot`] of its store under the
//!    fleet-shared [`Sealer`] and stages it (preceded by its key
//!    epoch) on the exit-less [`EnclaveChannel`] — ciphertext through
//!    untrusted memory, no host round-trip;
//! 3. the enclave dies: the driver reclaims its EPC frames and sealed
//!    swap;
//! 4. the heir receives and restores the snapshot **before** its next
//!    reap, then the router reassigns the victim's shards to it.
//!
//! Nothing is lost because host-side socket queues outlive the
//! enclave: requests the victim never reaped are still queued, and
//! the heir reaps them — in arrival order — once it owns the shards.
//! Replies stay byte-identical to an unkilled run because the restore
//! merges the victim's items before the heir serves the victim's
//! connections.
//!
//! # Rejoin
//!
//! [`FleetKvs::respawn`] brings a dead slot back as a **fresh**
//! enclave (new sealing identity — which is why snapshots are sealed
//! under the shared fleet key, not per-enclave identities). The
//! current owner of the slot's original shards donates a snapshot
//! over the channel; the cold replica restores it, is marked serving,
//! and takes its original (round-robin) shard slice back at the
//! fence. Donating from the owner — not an arbitrary survivor — is
//! what makes arbitrary kill/respawn schedules safe: the owner's
//! store is the one that has been serving those connections, so it
//! supersets everything the rejoining replica must know.
//!
//! # Versioned merges
//!
//! Snapshots are whole-store images, so after a rejoin a donor still
//! carries copies of keys it no longer serves; if that donor is later
//! killed, its snapshot holds *stale* values for those keys. Every
//! restore therefore merges last-writer-wins on a per-item write stamp
//! ([`Kvs::set_write_version`]): stores advance to stamp `epoch + 1`
//! after every fence, a fence-`epoch` snapshot carries stamps at most
//! `epoch`, and a re-imported stale copy can never clobber the value a
//! fresher interval wrote (the kill A → respawn A → kill B schedule
//! exercises exactly this).
//!
//! # Background maintenance plane
//!
//! The protocols above are fence-*synchronous*: a kill fence carries a
//! whole-store snapshot plus a whole-store restore on serving cores,
//! and engine maintenance (slab relocations, segment expiry/merges)
//! runs inside serving-path fences. With
//! [`FleetConfig::with_maintenance`] all of that byte-work moves onto
//! a dedicated maintenance core (the same shape as the SUVM swapper's
//! worker), driven by [`FleetKvs::maintenance_tick`]:
//!
//! - **incremental delta snapshots** stream each replica's writes
//!   since its last round to every serving peer in bounded chunks
//!   ([`EnclaveChannel::send_chunked`], `MSG_DELTA_BEGIN`/
//!   `MSG_DELTA_CHUNK`), so a later kill fence shrinks to a *final
//!   delta* plus the shard reassignment and epoch flip;
//! - **engine byte-work** runs via [`Kvs::maintenance_tick`] against
//!   quiesced slabs; serving-core fences only publish counters
//!   (`maint_stall_cycles` stays ≈ 0 on serving cores);
//! - a **failure detector** compares per-replica heartbeats (bumped
//!   by every [`FleetKvs::pump_replica`]) across ticks and drives
//!   kill/respawn itself instead of the load loop.
//!
//! Delta epochs are checked monotone per *receiver* (a broadcast
//! delivers one epoch to many stores); reply transparency versus the
//! synchronous protocol is pinned by `tests/fleet_equivalence.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eleos_core::{Snapshot, Suvm, SuvmConfig};
use eleos_crypto::Sealer;
use eleos_enclave::fleet::{Fleet, ReplicaState};
use eleos_enclave::host::Fd;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::EnclaveChannel;
use eleos_sim::stats::Stats;

use crate::io::{IoPath, ServerIo, ServerIoConfig};
use crate::kvs::Kvs;
use crate::loadgen::ShardMap;
use crate::space::DataSpace;
use crate::storage::EngineConfig;
use crate::wire::Session;

/// Channel message kind: a snapshot-epoch announcement (8 LE bytes),
/// sent ahead of the snapshot it covers.
pub const MSG_EPOCH: u8 = 1;
/// Channel message kind: a serialized sealed [`Snapshot`].
pub const MSG_SNAPSHOT: u8 = 2;
/// Channel message kind: a wire-session key-epoch announcement (4 LE
/// bytes) — the rekey initiator tells every peer which epoch now
/// seals replies, so a fleet never serves half its shards under a key
/// the router's client side has already retired.
pub const MSG_REKEY: u8 = 3;
/// Channel message kind: the BEGIN frame of a chunked delta snapshot
/// ([`EnclaveChannel::send_chunked`] framing; the header carries the
/// 8-byte delta epoch).
pub const MSG_DELTA_BEGIN: u8 = 4;
/// Channel message kind: one bounded chunk of a delta snapshot.
pub const MSG_DELTA_CHUNK: u8 = 5;

/// Tunables for the background maintenance plane (see the module
/// docs). Enabling it ([`FleetConfig::with_maintenance`]) switches
/// every replica's storage engine to background mode and moves
/// snapshot streaming, engine byte-work, and failure handling onto
/// [`FleetKvs::maintenance_tick`], driven from `core`.
#[derive(Clone)]
pub struct MaintenanceConfig {
    /// The core the maintenance plane runs on. Must not be a serving
    /// core (the whole point is that its cycles never land on one) —
    /// not enforced, but benches that share it see the stall return.
    pub core: usize,
    /// Consecutive heartbeat-less ticks before the failure detector
    /// declares a serving replica dead and fails it over.
    pub hb_miss_threshold: u64,
    /// Chunk size for streamed delta snapshots: bounds how much of
    /// the cross-enclave ring one delta occupies at a time.
    pub chunk_bytes: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            core: 1,
            hb_miss_threshold: 3,
            chunk_bytes: 32 << 10,
        }
    }
}

/// Mutable maintenance-plane state, all behind one lock: the failure
/// detector's bookkeeping, per-sender delta bases, per-receiver delta
/// epochs, and the rejoin queue.
struct MaintState {
    /// Heartbeat value last observed per replica.
    last_hb: Vec<u64>,
    /// Consecutive ticks without heartbeat progress per replica.
    misses: Vec<u64>,
    /// Per-sender write-stamp floor for the next delta: everything
    /// below it has already been streamed to every serving peer.
    delta_base: Vec<u64>,
    /// Per-receiver highest delta epoch applied (monotonicity check —
    /// deliberately per-receiver, a broadcast delivers one epoch to
    /// many receivers).
    last_delta_epoch: Vec<u64>,
    /// Dead slots queued for background respawn.
    rejoin: Vec<usize>,
    /// Maintenance-core cycles spent on detector-driven failovers.
    auto_failover_cycles: u64,
    /// Maintenance-core cycles spent on queued rejoins.
    auto_recovery_cycles: u64,
}

/// The per-fleet maintenance plane: config, lock-free heartbeat
/// counters (bumped by serving replicas on every pump), and the
/// locked state.
struct MaintPlane {
    cfg: MaintenanceConfig,
    hb: Vec<AtomicU64>,
    state: Mutex<MaintState>,
}

impl MaintPlane {
    fn new(cfg: MaintenanceConfig, replicas: usize) -> Self {
        Self {
            cfg,
            hb: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            state: Mutex::new(MaintState {
                last_hb: vec![0; replicas],
                misses: vec![0; replicas],
                delta_base: vec![0; replicas],
                last_delta_epoch: vec![0; replicas],
                rejoin: Vec::new(),
                auto_failover_cycles: 0,
                auto_recovery_cycles: 0,
            }),
        }
    }
}

/// Fleet-level tunables.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of replica slots.
    pub replicas: usize,
    /// Linear EPC bytes per replica enclave.
    pub linear_bytes: usize,
    /// Cross-enclave channel ring capacity (must hold the largest
    /// snapshot plus its epoch message).
    pub channel_cap: usize,
    /// Per-replica KVS value-pool limit.
    pub mem_limit: u64,
    /// Per-replica KVS hash buckets.
    pub buckets: u64,
    /// When set, each replica's kv data lives in its own SUVM
    /// instance (metadata stays clear, §5.1) and the replicas contend
    /// on the global EPC allocator; when `None`, kv data lives in
    /// enclave-linear memory.
    pub suvm: Option<SuvmConfig>,
    /// Serving cores: replica `r` runs on `cores[r % cores.len()]`.
    /// The default (`[0]`) time-multiplexes every replica over one
    /// serving core — deterministic, and directly comparable to the
    /// single-enclave pipeline. A real fleet gives each replica its
    /// own core; pair that with [`FleetKvs::sync_clocks`] barriers so
    /// per-op timestamps stay on one timebase.
    pub cores: Vec<usize>,
    /// Storage engine every replica runs (the item-log snapshot format
    /// is engine-neutral, so a fleet could even mix engines across
    /// replicas — this knob keeps them uniform).
    pub engine: EngineConfig,
    /// When set, the fleet runs the background maintenance plane:
    /// engines switch to background mode, delta snapshots stream
    /// between fences, and kill/respawn run off the serving path (see
    /// the module docs). `None` keeps the fence-synchronous protocol.
    pub maintenance: Option<MaintenanceConfig>,
}

impl FleetConfig {
    /// A small fleet sized for tests and benches: enclave-linear kv
    /// data, 1 MiB enclaves, a 4 MiB channel, every replica
    /// multiplexed on core 0.
    #[must_use]
    pub fn small(replicas: usize) -> Self {
        Self {
            replicas,
            linear_bytes: 1 << 20,
            channel_cap: 4 << 20,
            mem_limit: 8 << 20,
            buckets: 1024,
            suvm: None,
            cores: vec![0],
            engine: EngineConfig::default(),
            maintenance: None,
        }
    }

    /// Enables the background maintenance plane.
    #[must_use]
    pub fn with_maintenance(mut self, m: MaintenanceConfig) -> Self {
        self.maintenance = Some(m);
        self
    }

    /// Pins replica serving loops to `cores` (round-robin when fewer
    /// cores than replicas).
    ///
    /// # Panics
    /// Panics when `cores` is empty.
    #[must_use]
    pub fn on_cores(mut self, cores: &[usize]) -> Self {
        assert!(!cores.is_empty(), "a fleet needs at least one serving core");
        self.cores = cores.to_vec();
        self
    }
}

/// What one failover cost.
#[derive(Debug, Clone, Copy)]
pub struct FailoverReport {
    /// The surviving replica that inherited the victim's shards.
    pub heir: usize,
    /// Shards reassigned at the fence.
    pub shards_moved: usize,
    /// Serialized snapshot size carried over the channel.
    pub snapshot_bytes: usize,
    /// Serving-core cycles from fence entry to the heir owning the
    /// shards with the restore complete.
    pub cycles: u64,
}

/// What one rejoin cost.
#[derive(Debug, Clone, Copy)]
pub struct RejoinReport {
    /// The serving replica that donated its state.
    pub donor: usize,
    /// Shards the rejoined replica took back.
    pub shards_taken: usize,
    /// Serialized snapshot size carried over the channel.
    pub snapshot_bytes: usize,
    /// Serving-core cycles from fence entry to the replica serving.
    pub cycles: u64,
}

/// One live replica's serving state: its enclave-entered thread, its
/// pipelines over the shared socket set, and its store.
struct Replica {
    ctx: ThreadCtx,
    io: ServerIo,
    kvs: Kvs,
    suvm: Option<Arc<Suvm>>,
}

/// A KVS served by a fleet of enclave replicas (see the module docs).
pub struct FleetKvs {
    machine: Arc<SgxMachine>,
    fleet: Fleet,
    map: Arc<ShardMap>,
    chan: Arc<EnclaveChannel>,
    sealer: Arc<dyn Sealer>,
    cfg: FleetConfig,
    io_cfg: ServerIoConfig,
    path: IoPath,
    session: Arc<Session>,
    fds: Vec<Fd>,
    /// One slot per replica index; `None` while Cold/Dead.
    slots: Vec<Mutex<Option<Replica>>>,
    /// Snapshot epoch: bumped at every snapshot fence, announced
    /// replica→replica over the channel ahead of the snapshot.
    epoch: AtomicU64,
    /// Highest epoch any receiver has accepted (monotonicity check).
    seen_epoch: AtomicU64,
    /// The background maintenance plane, when configured.
    maint: Option<MaintPlane>,
}

impl FleetKvs {
    /// Builds the fleet: `cfg.replicas` enclaves, each with its own
    /// [`ServerIo`] over the **same** socket set `fds` (reaping only
    /// owned shards) and its own [`Kvs`] seeded identically by
    /// `seed`. All replicas start serving; shard ownership starts
    /// round-robin ([`ShardMap::with_replicas`]).
    ///
    /// # Panics
    /// Panics when `cfg.replicas` is zero, exceeds the per-replica
    /// stat gauges, or the config/socket-set combination violates the
    /// [`ServerIoConfig::build`] invariants.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: &Arc<SgxMachine>,
        fds: &[Fd],
        io_cfg: ServerIoConfig,
        path: IoPath,
        session: Arc<Session>,
        sealer: Arc<dyn Sealer>,
        cfg: FleetConfig,
        mut seed: impl FnMut(&mut ThreadCtx, &mut Kvs),
    ) -> Self {
        assert!(cfg.replicas > 0, "a fleet needs at least one replica");
        let fleet = Fleet::new(machine, cfg.replicas, cfg.linear_bytes);
        let map = ShardMap::with_replicas(fds.len(), cfg.replicas);
        let chan = EnclaveChannel::new(machine, cfg.channel_cap);
        let maint = cfg
            .maintenance
            .clone()
            .map(|m| MaintPlane::new(m, cfg.replicas));
        let this = Self {
            machine: Arc::clone(machine),
            fleet,
            map,
            chan,
            sealer,
            cfg,
            io_cfg,
            path,
            session,
            fds: fds.to_vec(),
            slots: Vec::new(),
            epoch: AtomicU64::new(0),
            seen_epoch: AtomicU64::new(0),
            maint,
        };
        let mut slots = Vec::with_capacity(this.cfg.replicas);
        for r in 0..this.cfg.replicas {
            let mut rep = this.wire_replica(r);
            seed(&mut rep.ctx, &mut rep.kvs);
            // Seed items carry stamp 0 (identical in every replica);
            // serving-interval writes start at 1 so the versioned
            // restore merge can tell them apart.
            rep.kvs.set_write_version(1);
            this.fleet.mark_serving(r);
            slots.push(Mutex::new(Some(rep)));
        }
        Self { slots, ..this }
    }

    /// The core replica `r` serves on.
    fn core_of(&self, r: usize) -> usize {
        self.cfg.cores[r % self.cfg.cores.len()]
    }

    /// Wires replica `r`'s runtime onto its (Restoring) enclave: an
    /// entered thread on the replica's serving core, a store, and
    /// pipelines over the full socket set tagged with the replica's
    /// gauge slot.
    fn wire_replica(&self, r: usize) -> Replica {
        let enclave = self.fleet.enclave(r);
        let mut ctx = ThreadCtx::for_enclave(&self.machine, &enclave, self.core_of(r));
        ctx.enter();
        let (data, suvm) = match &self.cfg.suvm {
            Some(suvm_cfg) => {
                let suvm = Suvm::new(&ctx, suvm_cfg.clone());
                (DataSpace::suvm(&suvm), Some(suvm))
            }
            None => (DataSpace::Enclave(Arc::clone(&enclave)), None),
        };
        let meta = DataSpace::Untrusted(Arc::clone(&self.machine));
        let mut kvs = Kvs::with_engine(
            meta,
            data,
            self.cfg.mem_limit,
            self.cfg.buckets,
            &self.cfg.engine,
        );
        if self.maint.is_some() {
            kvs.set_background(true);
        }
        kvs.init(&mut ctx);
        let mut cfg = self.io_cfg.clone().replica(r);
        if cfg.balance.is_some() {
            cfg = cfg.routed(Arc::clone(&self.map));
        }
        let io = cfg.build(
            &ctx,
            &self.fds,
            self.path.clone(),
            Arc::clone(&self.session),
        );
        Replica { ctx, io, kvs, suvm }
    }

    /// The router (connection → shard → replica) shared with the load
    /// generator.
    #[must_use]
    pub fn map(&self) -> &Arc<ShardMap> {
        &self.map
    }

    /// The underlying fleet (membership and lifecycle states).
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The current snapshot epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Rotates the fleet's wire-session key epoch at a fence.
    /// `initiator` retires any still-draining rotation, derives the
    /// next epoch key (double-buffered — no serving stall anywhere in
    /// the fleet) and announces the new epoch over the exit-less
    /// channel; every other serving replica acknowledges the
    /// announcement before its next reap, so no replica seals replies
    /// under an epoch its peers have not heard of. Returns the new
    /// epoch.
    ///
    /// # Panics
    /// Panics when `initiator` is not serving, or when the shared
    /// session is not in a rotatable state (never established, or
    /// revoked).
    pub fn rekey_wire(&self, initiator: usize) -> u32 {
        assert_eq!(
            self.fleet.state(initiator),
            ReplicaState::Serving,
            "rekey initiator {initiator} must be serving"
        );
        let peers: Vec<usize> = self
            .fleet
            .serving()
            .into_iter()
            .filter(|&r| r != initiator)
            .collect();
        let to = {
            let mut slot = self.slots[initiator].lock().expect("fleet slot poisoned");
            let rep = slot.as_mut().expect("serving replica must be wired");
            self.session.finish_rekey();
            self.session.begin_rekey(&mut rep.ctx);
            let to = self.session.epoch();
            for _ in &peers {
                self.chan.send(&mut rep.ctx, MSG_REKEY, &to.to_le_bytes());
            }
            to
        };
        for &r in &peers {
            let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
            let rep = slot.as_mut().expect("serving replica must be wired");
            let (kind, eb) = self
                .chan
                .recv(&mut rep.ctx)
                .expect("rekey protocol: announcement staged");
            assert_eq!(kind, MSG_REKEY, "rekey protocol: unexpected message kind");
            let heard = u32::from_le_bytes(eb.try_into().expect("4-byte epoch"));
            assert_eq!(heard, to, "rekey announcement must carry the new epoch");
        }
        to
    }

    /// Runs one serving round: every serving replica reaps its owned
    /// shards, serves the batch, and sends the replies. Returns the
    /// number of requests handled across the fleet.
    pub fn pump(&self) -> usize {
        let mut total = 0;
        for r in 0..self.slots.len() {
            total += self.pump_replica(r);
        }
        total
    }

    /// One serving round for replica `r` alone (0 when it is not
    /// serving or owns no shards).
    pub fn pump_replica(&self, r: usize) -> usize {
        if self.fleet.state(r) != ReplicaState::Serving {
            return 0;
        }
        // A pumped replica is a live replica: the heartbeat feeds the
        // background failure detector (a mute replica stops bumping
        // and gets failed over after `hb_miss_threshold` ticks).
        if let Some(mp) = &self.maint {
            mp.hb[r].fetch_add(1, Ordering::Relaxed);
        }
        let owned = self.map.shards_of(r);
        if owned.is_empty() {
            return 0;
        }
        let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
        let rep = slot.as_mut().expect("serving replica must be wired");
        rep.kvs.handle_batch_on(&mut rep.ctx, &rep.io, &owned)
    }

    /// Flushes every serving replica's pending (double-buffered)
    /// sends — the end-of-run fence.
    pub fn flush(&self) {
        for r in self.fleet.serving() {
            let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
            if let Some(rep) = slot.as_mut() {
                rep.io.flush(&mut rep.ctx);
            }
        }
    }

    /// Kills `victim` at a fence: snapshot out over the channel, EPC
    /// reclaimed, shards drained to the heir (see the module docs for
    /// the protocol and why no reply is lost). With the maintenance
    /// plane configured, the byte-work (final delta + restores) runs
    /// on the maintenance core instead of the serving cores.
    ///
    /// # Panics
    /// Panics when `victim` is not serving or no other replica is.
    pub fn kill(&self, victim: usize) -> FailoverReport {
        if self.maint.is_some() {
            return self.kill_background(victim);
        }
        let serving = self.fleet.serving();
        assert!(
            serving.contains(&victim),
            "kill target {victim} is not serving"
        );
        let heir = *serving
            .iter()
            .find(|&&r| r != victim)
            .expect("failover needs a surviving replica");
        let (snapshot_bytes, snap_cycles) = self.snapshot_over_channel(victim);
        {
            let mut slot = self.slots[victim].lock().expect("fleet slot poisoned");
            let mut rep = slot.take().expect("serving replica must be wired");
            rep.ctx.exit();
        }
        self.fleet.kill(victim);
        Stats::bump(&self.machine.stats.fleet_failovers);
        // The heir restores before its next reap of the acquired
        // shards — the restore-then-own ordering is the failover
        // correctness invariant.
        let restore_cycles = self.restore_from_channel(heir);
        let moved = self.map.shards_of(victim);
        for &s in &moved {
            self.map.reassign(s, heir);
        }
        self.advance_write_versions();
        // The whole fence ran on serving cores: the victim's snapshot
        // and the heir's restore both stall the serving path.
        Stats::add(
            &self.machine.stats.maint_stall_cycles,
            snap_cycles + restore_cycles,
        );
        FailoverReport {
            heir,
            shards_moved: moved.len(),
            snapshot_bytes,
            cycles: snap_cycles + restore_cycles,
        }
    }

    /// Respawns dead slot `idx` as a fresh enclave that restores the
    /// shard-owner's donated snapshot and takes its original shard
    /// slice back (see the module docs).
    ///
    /// # Panics
    /// Panics when `idx` is not dead or no donor is serving.
    pub fn respawn(&self, idx: usize) -> RejoinReport {
        if self.maint.is_some() {
            return self.respawn_background(idx);
        }
        // The donor must be the current owner of the slot's original
        // shards: its store is the one serving those connections, so
        // it supersets everything the rejoining replica needs. (All
        // shards of one residue class always move together, so one
        // probe suffices; an empty class falls back to any server.)
        let donor = self.rejoin_donor(idx);
        assert_eq!(
            self.fleet.state(donor),
            ReplicaState::Serving,
            "rejoin donor {donor} must be serving"
        );
        self.fleet.respawn(idx);
        let (snapshot_bytes, snap_cycles) = self.snapshot_over_channel(donor);
        let t0 = self.machine.core(self.core_of(idx)).clock.now();
        let mut rep = self.wire_replica(idx);
        self.recv_restore(&mut rep);
        let wire_cycles = rep.ctx.now() - t0;
        *self.slots[idx].lock().expect("fleet slot poisoned") = Some(rep);
        self.fleet.mark_serving(idx);
        let mut taken = 0;
        for s in 0..self.fds.len() {
            if s % self.cfg.replicas == idx {
                self.map.reassign(s, idx);
                taken += 1;
            }
        }
        self.advance_write_versions();
        // The donor snapshot ran on the donor's serving core.
        Stats::add(&self.machine.stats.maint_stall_cycles, snap_cycles);
        RejoinReport {
            donor,
            shards_taken: taken,
            snapshot_bytes,
            cycles: snap_cycles + wire_cycles,
        }
    }

    /// Fence protocol, sender half: flush, quiesce, seal, stage the
    /// epoch announcement and snapshot on the channel. Returns the
    /// serialized snapshot size and the cycles the sender's core
    /// spent.
    fn snapshot_over_channel(&self, r: usize) -> (usize, u64) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let enclave_id = self.fleet.enclave(r).id;
        let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
        let rep = slot.as_mut().expect("serving replica must be wired");
        let t0 = rep.ctx.now();
        rep.io.flush(&mut rep.ctx);
        if let Some(suvm) = &rep.suvm {
            suvm.quiesce(&mut rep.ctx);
        }
        let snap = rep
            .kvs
            .snapshot(&mut rep.ctx, self.sealer.as_ref(), enclave_id, epoch);
        let bytes = snap.to_bytes();
        self.chan
            .send(&mut rep.ctx, MSG_EPOCH, &epoch.to_le_bytes());
        self.chan.send(&mut rep.ctx, MSG_SNAPSHOT, &bytes);
        Stats::bump(&self.machine.stats.fleet_snapshots);
        (bytes.len(), rep.ctx.now() - t0)
    }

    /// Fence protocol, receiver half for an already-wired replica.
    /// Returns the cycles the receiver's core spent.
    fn restore_from_channel(&self, r: usize) -> u64 {
        let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
        let rep = slot.as_mut().expect("serving replica must be wired");
        let t0 = rep.ctx.now();
        self.recv_restore(rep);
        rep.ctx.now() - t0
    }

    /// Reaps the epoch announcement + snapshot pair off the channel
    /// and restores it into `rep`'s store.
    fn recv_restore(&self, rep: &mut Replica) {
        let (kind, eb) = self
            .chan
            .recv(&mut rep.ctx)
            .expect("fence protocol: epoch message staged");
        assert_eq!(kind, MSG_EPOCH, "fence protocol: epoch precedes snapshot");
        let epoch = u64::from_le_bytes(eb.try_into().expect("8-byte epoch"));
        let last = self.seen_epoch.swap(epoch, Ordering::Relaxed);
        assert!(
            epoch > last,
            "session-key epoch went backwards: {epoch} after {last}"
        );
        let (kind, bytes) = self
            .chan
            .recv(&mut rep.ctx)
            .expect("fence protocol: snapshot staged");
        assert_eq!(kind, MSG_SNAPSHOT);
        let snap = Snapshot::from_bytes(&bytes);
        assert_eq!(snap.epoch(), epoch, "snapshot epoch mismatch");
        rep.kvs.restore(&mut rep.ctx, self.sealer.as_ref(), &snap);
        Stats::bump(&self.machine.stats.fleet_restores);
    }

    /// Moves every live replica's store into the post-fence write
    /// interval: writes stamped `epoch + 1` supersede everything a
    /// fence-`epoch` snapshot carries, which is what keeps the
    /// versioned restore merge last-writer-wins when a store's state
    /// bounces through several replicas (kill A, respawn A, kill B).
    fn advance_write_versions(&self) {
        let interval = self.epoch() + 1;
        for slot in &self.slots {
            let mut slot = slot.lock().expect("fleet slot poisoned");
            if let Some(rep) = slot.as_mut() {
                rep.kvs.set_write_version(interval);
            }
        }
    }

    /// Advances every serving core's clock (plus core `cores[0]`, the
    /// fleet timebase) to the furthest one — the idle wait at a
    /// barrier where all replicas have drained their chunk and the
    /// load generator stamps the next one. A no-op for a multiplexed
    /// fleet (one core). Returns the barrier time.
    pub fn sync_clocks(&self) -> u64 {
        let mut cores: Vec<usize> = self
            .fleet
            .serving()
            .iter()
            .map(|&r| self.core_of(r))
            .collect();
        cores.push(self.cfg.cores[0]);
        cores.sort_unstable();
        cores.dedup();
        let target = cores
            .iter()
            .map(|&c| self.machine.core(c).clock.now())
            .max()
            .unwrap_or(0);
        for &c in &cores {
            let clock = &self.machine.core(c).clock;
            clock.advance(target - clock.now());
        }
        target
    }

    /// Whether the background maintenance plane is configured.
    #[must_use]
    pub fn has_maintenance(&self) -> bool {
        self.maint.is_some()
    }

    /// Maintenance-core cycles spent on detector-driven failovers so
    /// far (0 without the plane).
    #[must_use]
    pub fn auto_failover_cycles(&self) -> u64 {
        self.maint.as_ref().map_or(0, |mp| {
            mp.state
                .lock()
                .expect("maintenance state poisoned")
                .auto_failover_cycles
        })
    }

    /// Maintenance-core cycles spent on queued rejoins so far (0
    /// without the plane).
    #[must_use]
    pub fn auto_recovery_cycles(&self) -> u64 {
        self.maint.as_ref().map_or(0, |mp| {
            mp.state
                .lock()
                .expect("maintenance state poisoned")
                .auto_recovery_cycles
        })
    }

    /// Queues dead slot `idx` for background respawn at the next
    /// maintenance tick (the off-path analogue of calling
    /// [`Self::respawn`] at a fence).
    ///
    /// # Panics
    /// Panics without the maintenance plane.
    pub fn request_rejoin(&self, idx: usize) {
        let mp = self
            .maint
            .as_ref()
            .expect("rejoin queue needs the maintenance plane");
        mp.state
            .lock()
            .expect("maintenance state poisoned")
            .rejoin
            .push(idx);
    }

    /// An entered thread on the maintenance core for replica `r`'s
    /// enclave — the same shape as the SUVM swapper's worker thread.
    /// Callers `exit()` it when done.
    fn maint_ctx(&self, r: usize) -> ThreadCtx {
        let core = self
            .maint
            .as_ref()
            .expect("maintenance plane configured")
            .cfg
            .core;
        let enclave = self.fleet.enclave(r);
        let mut ctx = ThreadCtx::for_enclave(&self.machine, &enclave, core);
        ctx.enter();
        ctx
    }

    /// One pass of the background maintenance plane, run on the
    /// maintenance core (directly by deterministic tests/benches, or
    /// from a [`MaintenanceCtx`](crate::maintenance::MaintenanceCtx)
    /// worker thread):
    ///
    /// 1. the failure detector compares heartbeats against the last
    ///    tick and fails over replicas that missed
    ///    `hb_miss_threshold` consecutive ticks;
    /// 2. queued rejoins ([`Self::request_rejoin`]) respawn;
    /// 3. every serving replica's engine runs its background
    ///    byte-work ([`Kvs::maintenance_tick`]: slab relocations,
    ///    segment expiry/merges) against the maintenance core;
    /// 4. a delta round streams each replica's writes since its last
    ///    delta to every serving peer in bounded chunks, then opens
    ///    the next write interval.
    ///
    /// Returns whether any work ran. A no-op without the plane.
    pub fn maintenance_tick(&self) -> bool {
        let Some(mp) = &self.maint else {
            return false;
        };
        let mut did = false;
        // 1. Failure detector: heartbeat progress since the last tick.
        // The scan itself costs maintenance-core cycles.
        let mut victims = Vec::new();
        {
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            for r in self.fleet.serving() {
                self.machine
                    .core(mp.cfg.core)
                    .clock
                    .advance(self.machine.cfg.costs.maint_heartbeat);
                let cur = mp.hb[r].load(Ordering::Relaxed);
                if cur == st.last_hb[r] {
                    st.misses[r] += 1;
                    Stats::bump(&self.machine.stats.hb_misses);
                    if st.misses[r] >= mp.cfg.hb_miss_threshold {
                        victims.push(r);
                    }
                } else {
                    st.last_hb[r] = cur;
                    st.misses[r] = 0;
                }
            }
        }
        for v in victims {
            if self.fleet.serving().len() < 2 || self.fleet.state(v) != ReplicaState::Serving {
                continue;
            }
            let t0 = self.machine.core(mp.cfg.core).clock.now();
            self.kill_background(v);
            let dt = self.machine.core(mp.cfg.core).clock.now() - t0;
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            st.misses[v] = 0;
            st.auto_failover_cycles += dt;
            did = true;
        }
        // 2. Queued rejoins.
        let pending: Vec<usize> = {
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            std::mem::take(&mut st.rejoin)
        };
        for idx in pending {
            if self.fleet.state(idx) != ReplicaState::Dead {
                continue;
            }
            let t0 = self.machine.core(mp.cfg.core).clock.now();
            self.respawn_background(idx);
            let dt = self.machine.core(mp.cfg.core).clock.now() - t0;
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            st.auto_recovery_cycles += dt;
            did = true;
        }
        // 3. Engine byte-work, off-core against quiesced slabs: the
        // serving-core fences only published counters; the copies and
        // merges happen here.
        for r in self.fleet.serving() {
            let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
            let Some(rep) = slot.as_mut() else { continue };
            let mut mctx = self.maint_ctx(r);
            if rep.kvs.maintenance_tick(&mut mctx) {
                did = true;
            }
            mctx.exit();
        }
        // 4. Delta round.
        did |= self.delta_round();
        did
    }

    /// Streams one incremental snapshot per serving replica to every
    /// serving peer, in bounded chunks over the channel. Each round
    /// shrinks what a later kill fence must carry to the writes since
    /// this round — the fence's final delta plus the epoch flip.
    fn delta_round(&self) -> bool {
        let Some(mp) = &self.maint else {
            return false;
        };
        let serving = self.fleet.serving();
        if serving.len() < 2 {
            return false;
        }
        for &r in &serving {
            let peers: Vec<usize> = serving.iter().copied().filter(|&q| q != r).collect();
            let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            let base = mp
                .state
                .lock()
                .expect("maintenance state poisoned")
                .delta_base[r];
            let enclave_id = self.fleet.enclave(r).id;
            {
                let mut slot = self.slots[r].lock().expect("fleet slot poisoned");
                let rep = slot.as_mut().expect("serving replica must be wired");
                let mut mctx = self.maint_ctx(r);
                let snap = rep.kvs.snapshot_since(
                    &mut mctx,
                    self.sealer.as_ref(),
                    enclave_id,
                    epoch,
                    base,
                );
                let bytes = snap.to_bytes();
                for _ in &peers {
                    self.chan.send_chunked(
                        &mut mctx,
                        MSG_DELTA_BEGIN,
                        MSG_DELTA_CHUNK,
                        &epoch.to_le_bytes(),
                        &bytes,
                        mp.cfg.chunk_bytes,
                    );
                }
                mctx.exit();
            }
            for &q in &peers {
                self.apply_delta(q);
            }
            // Open the next write interval: post-round writes carry
            // strictly larger stamps than anything just streamed, so
            // a rewrite of a streamed key is never mistaken for the
            // streamed copy.
            self.advance_write_versions();
            let interval = self.epoch() + 1;
            mp.state
                .lock()
                .expect("maintenance state poisoned")
                .delta_base[r] = interval;
        }
        true
    }

    /// Receives one chunked delta off the channel into serving
    /// replica `q`'s store, on the maintenance core.
    fn apply_delta(&self, q: usize) {
        let mp = self.maint.as_ref().expect("maintenance plane configured");
        let mut slot = self.slots[q].lock().expect("fleet slot poisoned");
        let rep = slot.as_mut().expect("serving replica must be wired");
        let mut mctx = self.maint_ctx(q);
        let (header, payload) = self
            .chan
            .recv_chunked(&mut mctx, MSG_DELTA_BEGIN, MSG_DELTA_CHUNK)
            .expect("delta protocol: chunks staged");
        let epoch = u64::from_le_bytes(header.try_into().expect("8-byte epoch"));
        {
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            assert!(
                epoch > st.last_delta_epoch[q],
                "delta epoch went backwards on replica {q}"
            );
            st.last_delta_epoch[q] = epoch;
        }
        let snap = Snapshot::from_bytes(&payload);
        assert_eq!(snap.epoch(), epoch, "delta snapshot epoch mismatch");
        rep.kvs.restore(&mut mctx, self.sealer.as_ref(), &snap);
        mctx.exit();
    }

    /// Background failover: the serving-path fence shrinks to the
    /// shard reassignment and epoch flip — the victim's *final delta*
    /// (only what the delta rounds have not yet streamed) and every
    /// survivor's restore run on the maintenance core. The delta is
    /// broadcast to **all** survivors, not just the heir, preserving
    /// the invariant that every serving store holds all streamed
    /// state (which is what lets any survivor donate or inherit in a
    /// later fence).
    fn kill_background(&self, victim: usize) -> FailoverReport {
        let mp = self.maint.as_ref().expect("maintenance plane configured");
        let serving = self.fleet.serving();
        assert!(
            serving.contains(&victim),
            "kill target {victim} is not serving"
        );
        let heir = *serving
            .iter()
            .find(|&&r| r != victim)
            .expect("failover needs a surviving replica");
        let survivors: Vec<usize> = serving.iter().copied().filter(|&r| r != victim).collect();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let base = mp
            .state
            .lock()
            .expect("maintenance state poisoned")
            .delta_base[victim];
        let enclave_id = self.fleet.enclave(victim).id;
        let t0 = self.machine.core(mp.cfg.core).clock.now();
        let snapshot_bytes;
        {
            let mut slot = self.slots[victim].lock().expect("fleet slot poisoned");
            let mut rep = slot.take().expect("serving replica must be wired");
            let mut mctx = self.maint_ctx(victim);
            rep.io.flush(&mut mctx);
            if let Some(suvm) = &rep.suvm {
                suvm.quiesce(&mut mctx);
            }
            let snap =
                rep.kvs
                    .snapshot_since(&mut mctx, self.sealer.as_ref(), enclave_id, epoch, base);
            let bytes = snap.to_bytes();
            snapshot_bytes = bytes.len();
            for _ in &survivors {
                self.chan.send_chunked(
                    &mut mctx,
                    MSG_DELTA_BEGIN,
                    MSG_DELTA_CHUNK,
                    &epoch.to_le_bytes(),
                    &bytes,
                    mp.cfg.chunk_bytes,
                );
            }
            mctx.exit();
            rep.ctx.exit();
        }
        self.fleet.kill(victim);
        Stats::bump(&self.machine.stats.fleet_failovers);
        Stats::bump(&self.machine.stats.fleet_snapshots);
        for &q in &survivors {
            self.apply_delta(q);
            Stats::bump(&self.machine.stats.fleet_restores);
        }
        let moved = self.map.shards_of(victim);
        for &s in &moved {
            self.map.reassign(s, heir);
        }
        self.advance_write_versions();
        FailoverReport {
            heir,
            shards_moved: moved.len(),
            snapshot_bytes,
            cycles: self.machine.core(mp.cfg.core).clock.now() - t0,
        }
    }

    /// Background rejoin: the donor's full snapshot streams in chunks
    /// on the maintenance core; the rejoined replica's delta state is
    /// reset so the plane treats it as fully caught up.
    fn respawn_background(&self, idx: usize) -> RejoinReport {
        let mp = self.maint.as_ref().expect("maintenance plane configured");
        let donor = self.rejoin_donor(idx);
        assert_eq!(
            self.fleet.state(donor),
            ReplicaState::Serving,
            "rejoin donor {donor} must be serving"
        );
        self.fleet.respawn(idx);
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let enclave_id = self.fleet.enclave(donor).id;
        let t0 = self.machine.core(mp.cfg.core).clock.now();
        let snapshot_bytes;
        {
            let mut slot = self.slots[donor].lock().expect("fleet slot poisoned");
            let rep = slot.as_mut().expect("serving replica must be wired");
            let mut mctx = self.maint_ctx(donor);
            rep.io.flush(&mut mctx);
            if let Some(suvm) = &rep.suvm {
                suvm.quiesce(&mut mctx);
            }
            // Full image (base 0): the donor holds all streamed state
            // plus its own unstreamed writes, so the rejoiner comes
            // back fully caught up.
            let snap =
                rep.kvs
                    .snapshot_since(&mut mctx, self.sealer.as_ref(), enclave_id, epoch, 0);
            let bytes = snap.to_bytes();
            snapshot_bytes = bytes.len();
            self.chan.send_chunked(
                &mut mctx,
                MSG_DELTA_BEGIN,
                MSG_DELTA_CHUNK,
                &epoch.to_le_bytes(),
                &bytes,
                mp.cfg.chunk_bytes,
            );
            mctx.exit();
        }
        Stats::bump(&self.machine.stats.fleet_snapshots);
        let mut rep = self.wire_replica(idx);
        {
            let mut mctx = self.maint_ctx(idx);
            let (header, payload) = self
                .chan
                .recv_chunked(&mut mctx, MSG_DELTA_BEGIN, MSG_DELTA_CHUNK)
                .expect("rejoin protocol: chunks staged");
            let got = u64::from_le_bytes(header.try_into().expect("8-byte epoch"));
            assert_eq!(got, epoch, "rejoin snapshot epoch mismatch");
            let snap = Snapshot::from_bytes(&payload);
            assert_eq!(snap.epoch(), epoch, "rejoin snapshot epoch mismatch");
            rep.kvs.restore(&mut mctx, self.sealer.as_ref(), &snap);
            mctx.exit();
        }
        Stats::bump(&self.machine.stats.fleet_restores);
        *self.slots[idx].lock().expect("fleet slot poisoned") = Some(rep);
        self.fleet.mark_serving(idx);
        let mut taken = 0;
        for s in 0..self.fds.len() {
            if s % self.cfg.replicas == idx {
                self.map.reassign(s, idx);
                taken += 1;
            }
        }
        self.advance_write_versions();
        {
            let mut st = mp.state.lock().expect("maintenance state poisoned");
            // Caught up through `epoch`; the donor keeps streaming its
            // own unstreamed interval, so the rejoiner's base starts
            // at the fresh write interval.
            st.delta_base[idx] = self.epoch() + 1;
            st.last_delta_epoch[idx] = epoch;
            st.misses[idx] = 0;
            st.last_hb[idx] = mp.hb[idx].load(Ordering::Relaxed);
        }
        RejoinReport {
            donor,
            shards_taken: taken,
            snapshot_bytes,
            cycles: self.machine.core(mp.cfg.core).clock.now() - t0,
        }
    }

    /// The current owner of dead slot `idx`'s original shard slice
    /// (see [`Self::respawn`] for why the owner must donate).
    fn rejoin_donor(&self, idx: usize) -> usize {
        (0..self.fds.len())
            .find(|&s| s % self.cfg.replicas == idx)
            .map_or_else(
                || *self.fleet.serving().first().expect("rejoin needs a donor"),
                |s| self.map.replica_of(s),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_crypto::gcm::AesGcm128;
    use eleos_enclave::machine::MachineConfig;
    use eleos_rpc::{with_syscalls, RpcService};

    use crate::kvs::{build_get, build_set};
    use crate::loadgen::shard_for;

    const SHARDS: usize = 4;

    fn fleet(replicas: usize) -> (Arc<SgxMachine>, Arc<Session>, Vec<Fd>, FleetKvs) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ut = ThreadCtx::untrusted(&m, 1);
        let fds: Vec<Fd> = (0..SHARDS).map(|_| m.host.socket(&ut, 256 << 10)).collect();
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let wire = Arc::new(Session::established([9u8; 16]));
        let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x44u8; 16]));
        let fk = FleetKvs::new(
            &m,
            &fds,
            ServerIoConfig::with_buf_len(16 << 10)
                .batch(4)
                .shards(SHARDS),
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
            sealer,
            FleetConfig::small(replicas),
            |ctx, kvs| {
                for i in 0..32u32 {
                    kvs.set(ctx, format!("seed-{i}").as_bytes(), &[i as u8; 48]);
                }
            },
        );
        (m, wire, fds, fk)
    }

    #[test]
    fn fleet_serves_seeded_gets_across_replicas() {
        let (m, wire, fds, fk) = fleet(2);
        let ut = ThreadCtx::untrusted(&m, 1);
        let mut pushed = [0usize; SHARDS];
        for conn in 0..8u64 {
            let s = shard_for(conn, SHARDS);
            let key = format!("seed-{}", conn % 32);
            m.host
                .push_request(&ut, fds[s], &wire.encrypt(&build_get(key.as_bytes())));
            pushed[s] += 1;
        }
        let mut served = 0;
        for _ in 0..32 {
            served += fk.pump();
            if served == 8 {
                break;
            }
        }
        fk.flush();
        assert_eq!(served, 8);
        for (s, &n) in pushed.iter().enumerate() {
            let mut got = 0;
            while let Some(resp) = m.host.pop_response(fds[s]) {
                let plain = wire.decrypt(&resp);
                assert_eq!(plain[0], 1, "seeded key must be found");
                got += 1;
            }
            assert_eq!(got, n, "shard {s} answers everything it queued");
        }
        // Both replicas did work (each owns half the shard set), and
        // each credited only its own gauge slot.
        let st = m.stats.snapshot();
        for r in 0..2 {
            let handled: u64 = (0..SHARDS)
                .map(|s| st.shard.replica[r].sojourn[s].count())
                .sum();
            assert!(handled > 0, "replica {r} must have reaped");
        }
    }

    #[test]
    fn kill_drains_shards_to_the_heir_with_state() {
        let (m, wire, fds, fk) = fleet(2);
        let ut = ThreadCtx::untrusted(&m, 1);
        // A SET routed to a replica-1 shard, then a kill, then a GET of
        // the same key: the heir must serve it from the restored state.
        let conn = (0..64u64).find(|&c| shard_for(c, SHARDS) % 2 == 1).unwrap();
        let s = shard_for(conn, SHARDS);
        assert_eq!(fk.map().replica_of(s), 1);
        m.host
            .push_request(&ut, fds[s], &wire.encrypt(&build_set(b"fresh", &[7u8; 32])));
        while fk.pump() == 0 {}
        fk.flush();
        assert_eq!(wire.decrypt(&m.host.pop_response(fds[s]).unwrap()), [1u8]);

        let report = fk.kill(1);
        assert_eq!(report.heir, 0);
        assert_eq!(report.shards_moved, 2);
        assert!(report.snapshot_bytes > 0);
        assert!(report.cycles > 0);
        assert_eq!(fk.fleet().state(1), ReplicaState::Dead);
        assert_eq!(fk.map().shards_of(0), vec![0, 1, 2, 3]);

        m.host
            .push_request(&ut, fds[s], &wire.encrypt(&build_get(b"fresh")));
        let mut served = 0;
        while served == 0 {
            served = fk.pump();
        }
        fk.flush();
        let plain = wire.decrypt(&m.host.pop_response(fds[s]).unwrap());
        assert_eq!(plain[0], 1, "heir must hold the victim's item");
        assert_eq!(&plain[5..], [7u8; 32]);
        let st = m.stats.snapshot();
        assert_eq!(st.fleet_failovers, 1);
        assert_eq!(st.fleet_snapshots, 1);
        assert_eq!(st.fleet_restores, 1);
    }

    #[test]
    fn respawn_restores_from_the_shard_owner_and_takes_shards_back() {
        let (m, wire, fds, fk) = fleet(3);
        let ut = ThreadCtx::untrusted(&m, 1);
        fk.kill(1);
        // Post-kill load lands on the heir; the rejoining replica must
        // see it, which is why the donor is the shard owner.
        let conn = (0..64u64).find(|&c| shard_for(c, SHARDS) == 1).unwrap();
        m.host.push_request(
            &ut,
            fds[1],
            &wire.encrypt(&build_set(b"after-kill", &[9u8; 16])),
        );
        let _ = conn;
        while fk.pump() == 0 {}
        fk.flush();
        while m.host.pop_response(fds[1]).is_some() {}

        let report = fk.respawn(1);
        assert_eq!(report.donor, 0, "shard 1's owner donates");
        assert_eq!(
            report.shards_taken, 1,
            "4 shards over 3 replicas: class 1 = {{1}}"
        );
        assert!(report.cycles > 0);
        assert_eq!(fk.fleet().state(1), ReplicaState::Serving);
        assert_eq!(fk.map().replica_of(1), 1);

        m.host
            .push_request(&ut, fds[1], &wire.encrypt(&build_get(b"after-kill")));
        let mut served = 0;
        while served == 0 {
            served = fk.pump();
        }
        fk.flush();
        let plain = wire.decrypt(&m.host.pop_response(fds[1]).unwrap());
        assert_eq!(plain[0], 1, "rejoined replica holds post-kill state");
        let st = m.stats.snapshot();
        assert_eq!(st.fleet_restores, 2);
        assert!(
            st.xchan_msgs >= 4,
            "two fence protocols crossed the channel"
        );
    }

    #[test]
    #[should_panic(expected = "needs a surviving replica")]
    fn kill_of_the_last_replica_fails_fast() {
        let (_m, _wire, _fds, fk) = fleet(1);
        fk.kill(0);
    }

    #[test]
    fn fleet_rekey_announces_the_epoch_and_keeps_serving() {
        let (m, wire, fds, fk) = fleet(3);
        let ut = ThreadCtx::untrusted(&m, 1);
        let push_gets = || {
            for conn in 0..8u64 {
                let s = shard_for(conn, SHARDS);
                let key = format!("seed-{}", conn % 32);
                m.host
                    .push_request(&ut, fds[s], &wire.encrypt(&build_get(key.as_bytes())));
            }
        };
        let s0 = m.stats.snapshot();
        push_gets();
        let mut served = 0;
        while served < 8 {
            served += fk.pump();
        }
        let to = fk.rekey_wire(0);
        assert_eq!(to, 1, "first wire rotation lands on epoch 1");
        assert_eq!(wire.epoch(), 1);
        // Epoch-0 messages queued before the announcement still drain;
        // post-rekey arrivals seal under epoch 1.
        push_gets();
        while served < 16 {
            served += fk.pump();
        }
        fk.flush();
        let mut answered = 0;
        for &fd in &fds {
            while let Some(resp) = m.host.pop_response(fd) {
                assert_eq!(wire.decrypt(&resp)[0], 1, "seeded key must be found");
                answered += 1;
            }
        }
        assert_eq!(answered, 16, "no reply lost across the rotation");
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.rekeys, 1);
        assert_eq!(d.auth_failures, 0);
        assert_eq!(
            d.xchan_msgs, 2,
            "one announcement per non-initiating replica"
        );
    }

    #[test]
    fn epoch_advances_monotonically_across_fences() {
        let (_m, _wire, _fds, fk) = fleet(3);
        assert_eq!(fk.epoch(), 0);
        fk.kill(2);
        assert_eq!(fk.epoch(), 1);
        fk.respawn(2);
        assert_eq!(fk.epoch(), 2);
        fk.kill(1);
        assert_eq!(fk.epoch(), 3);
    }

    fn fleet_bg(replicas: usize) -> (Arc<SgxMachine>, Arc<Session>, Vec<Fd>, FleetKvs) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ut = ThreadCtx::untrusted(&m, 1);
        let fds: Vec<Fd> = (0..SHARDS).map(|_| m.host.socket(&ut, 256 << 10)).collect();
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let wire = Arc::new(Session::established([9u8; 16]));
        let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x44u8; 16]));
        let fk = FleetKvs::new(
            &m,
            &fds,
            ServerIoConfig::with_buf_len(16 << 10)
                .batch(4)
                .shards(SHARDS),
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
            sealer,
            FleetConfig::small(replicas).with_maintenance(MaintenanceConfig {
                core: 1,
                hb_miss_threshold: 3,
                chunk_bytes: 4 << 10,
            }),
            |ctx, kvs| {
                for i in 0..32u32 {
                    kvs.set(ctx, format!("seed-{i}").as_bytes(), &[i as u8; 48]);
                }
            },
        );
        (m, wire, fds, fk)
    }

    #[test]
    fn delta_rounds_stream_writes_to_peers_in_chunks() {
        let (m, wire, fds, fk) = fleet_bg(2);
        let ut = ThreadCtx::untrusted(&m, 1);
        // A SET routed to replica 0, then one maintenance tick: the
        // delta round must land the item in replica 1's store without
        // any fence.
        let s = (0..SHARDS).find(|&s| fk.map().replica_of(s) == 0).unwrap();
        m.host.push_request(
            &ut,
            fds[s],
            &wire.encrypt(&build_set(b"delta-key", &[5u8; 40])),
        );
        while fk.pump() == 0 {}
        fk.flush();
        while m.host.pop_response(fds[s]).is_some() {}
        assert!(fk.maintenance_tick(), "a delta round is work");
        {
            let mut slot = fk.slots[1].lock().unwrap();
            let rep = slot.as_mut().unwrap();
            assert_eq!(
                rep.kvs.get(&mut rep.ctx, b"delta-key").unwrap(),
                vec![5u8; 40],
                "peer must hold the streamed item"
            );
        }
        let st = m.stats.snapshot();
        assert!(st.maint_chunks > 0, "deltas travel chunked");
        assert!(
            st.snapshot_delta_items >= 1,
            "the delta carried the fresh item"
        );
        // The counters the fences publish did not move: no failover
        // snapshot/restore happened.
        assert_eq!(st.fleet_snapshots, 0);
        assert_eq!(st.fleet_restores, 0);
        // A later background kill carries only the final delta.
        let report = fk.kill(0);
        assert_eq!(report.heir, 1);
        assert_eq!(m.stats.snapshot().fleet_failovers, 1);
    }

    #[test]
    fn failure_detector_kills_a_mute_replica_and_rejoin_recovers_it() {
        let (m, wire, fds, fk) = fleet_bg(2);
        let ut = ThreadCtx::untrusted(&m, 1);
        // Replica 1 goes mute: only replica 0 pumps. After three
        // heartbeat-less ticks the detector fails it over.
        for round in 0..3 {
            fk.pump_replica(0);
            fk.maintenance_tick();
            if round < 2 {
                assert_eq!(fk.fleet().state(1), ReplicaState::Serving);
            }
        }
        assert_eq!(fk.fleet().state(1), ReplicaState::Dead);
        assert_eq!(fk.map().shards_of(0), vec![0, 1, 2, 3]);
        let st = m.stats.snapshot();
        assert!(st.hb_misses >= 3, "each tick counted the miss");
        assert_eq!(st.fleet_failovers, 1);
        assert!(fk.auto_failover_cycles() > 0, "failover cost maint cycles");

        // A queued rejoin brings the slot back at the next tick, and
        // it serves restored state.
        fk.request_rejoin(1);
        fk.pump_replica(0);
        fk.maintenance_tick();
        assert_eq!(fk.fleet().state(1), ReplicaState::Serving);
        assert!(fk.auto_recovery_cycles() > 0, "rejoin cost maint cycles");
        let s = (0..SHARDS).find(|&s| fk.map().replica_of(s) == 1).unwrap();
        m.host
            .push_request(&ut, fds[s], &wire.encrypt(&build_get(b"seed-3")));
        let mut served = 0;
        while served == 0 {
            served = fk.pump();
        }
        fk.flush();
        let plain = wire.decrypt(&m.host.pop_response(fds[s]).unwrap());
        assert_eq!(plain[0], 1, "rejoined replica serves restored state");
    }
}
