//! On-the-wire request encryption (paper §5).
//!
//! All three evaluation servers "decrypt/encrypt each request/response
//! from within the enclave using AES-NI hardware acceleration in CTR
//! mode with a randomized 128-bit key". The wire format is
//! `nonce (12) || ciphertext`; the CTR pass is performed for real (the
//! tests check confidentiality end to end) and its cycle cost is
//! charged at AES-NI rates through the cost model.

use eleos_crypto::ctr::Ctr128;
use eleos_enclave::thread::ThreadCtx;

/// Length of the nonce prefix on every message.
pub const NONCE_LEN: usize = 12;

/// A session cipher shared by the load generator ("clients") and the
/// server.
pub struct Wire {
    ctr: Ctr128,
    counter: std::sync::atomic::AtomicU64,
}

impl Wire {
    /// Creates a session cipher from a 128-bit key.
    #[must_use]
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            ctr: Ctr128::new(&key),
            counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Client side: encrypts `plain` into a wire message. Runs outside
    /// the measured cores, so no cycles are charged.
    #[must_use]
    pub fn encrypt(&self, plain: &[u8]) -> Vec<u8> {
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&n.to_le_bytes());
        let mut msg = Vec::with_capacity(NONCE_LEN + plain.len());
        msg.extend_from_slice(&nonce);
        msg.extend_from_slice(plain);
        self.ctr.apply(&nonce, &mut msg[NONCE_LEN..]);
        msg
    }

    /// Server side: decrypts a wire message in place (strips the
    /// nonce), charging the AES cost to `ctx`.
    #[must_use]
    pub fn decrypt_in_enclave(&self, ctx: &mut ThreadCtx, msg: &[u8]) -> Vec<u8> {
        assert!(msg.len() >= NONCE_LEN, "short wire message");
        let nonce: [u8; NONCE_LEN] = msg[..NONCE_LEN].try_into().expect("len checked");
        let mut plain = msg[NONCE_LEN..].to_vec();
        self.ctr.apply(&nonce, &mut plain);
        ctx.compute(ctx.machine.cfg.costs.crypto(plain.len()));
        plain
    }

    /// Server side: encrypts a response, charging `ctx`.
    #[must_use]
    pub fn encrypt_in_enclave(&self, ctx: &mut ThreadCtx, plain: &[u8]) -> Vec<u8> {
        ctx.compute(ctx.machine.cfg.costs.crypto(plain.len()));
        self.encrypt(plain)
    }

    /// Client side: decrypts a response.
    #[must_use]
    pub fn decrypt(&self, msg: &[u8]) -> Vec<u8> {
        assert!(msg.len() >= NONCE_LEN, "short wire message");
        let nonce: [u8; NONCE_LEN] = msg[..NONCE_LEN].try_into().expect("len checked");
        let mut plain = msg[NONCE_LEN..].to_vec();
        self.ctr.apply(&nonce, &mut plain);
        plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    #[test]
    fn roundtrip_and_confidentiality() {
        let w = Wire::new([9u8; 16]);
        let msg = w.encrypt(b"top secret request");
        assert!(!msg.windows(10).any(|s| s == b"top secret"));
        assert_eq!(w.decrypt(&msg), b"top secret request");
    }

    #[test]
    fn nonces_differ_between_messages() {
        let w = Wire::new([9u8; 16]);
        let a = w.encrypt(b"same plaintext");
        let b = w.encrypt(b"same plaintext");
        assert_ne!(a, b, "same plaintext must not repeat on the wire");
    }

    #[test]
    fn enclave_side_charges_cycles() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let w = Wire::new([1u8; 16]);
        let msg = w.encrypt(&vec![5u8; 4096]);
        let c0 = t.now();
        let plain = w.decrypt_in_enclave(&mut t, &msg);
        assert!(t.now() - c0 >= m.cfg.costs.crypto(4096));
        assert_eq!(plain, vec![5u8; 4096]);
        t.exit();
    }
}
