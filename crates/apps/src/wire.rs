//! On-the-wire request encryption (paper §5).
//!
//! All three evaluation servers "decrypt/encrypt each request/response
//! from within the enclave using AES-NI hardware acceleration in CTR
//! mode with a randomized 128-bit key". The wire format is
//! `nonce (12) || ciphertext`; the CTR pass is performed for real (the
//! tests check confidentiality end to end) and its cycle cost is
//! charged at AES-NI rates through the cost model.
//!
//! The serving path works in *batches*: [`Wire::decrypt_batch_in_enclave`]
//! opens a whole sorted reap in one [`Sealer::open_batch`] pass and
//! [`Wire::encrypt_batch_in_enclave`] seals all responses in one
//! [`Sealer::seal_batch`] pass. With `amortize` set, the cipher setup is
//! charged once per batch — the leader pays the full `crypto_fixed`,
//! follow-ons a quarter (`CostModel::crypto_batched`, the same contract
//! the SUVM write-back drain uses) — which is where the batched crypto
//! pipeline's cycles/op win comes from on a single serving core. The
//! single-message `decrypt_in_enclave`/`encrypt_in_enclave` are thin
//! compatibility wrappers over batches of one.

use eleos_crypto::ctr::Ctr128;
use eleos_crypto::gcm::Tag;
use eleos_crypto::{BatchAuthError, OpenJob, SealJob, Sealer};
use eleos_enclave::thread::ThreadCtx;

/// Length of the nonce prefix on every message.
pub const NONCE_LEN: usize = 12;

/// A session cipher shared by the load generator ("clients") and the
/// server.
pub struct Wire {
    ctr: Ctr128,
    counter: std::sync::atomic::AtomicU64,
}

impl Wire {
    /// Creates a session cipher from a 128-bit key.
    #[must_use]
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            ctr: Ctr128::new(&key),
            counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Draws the next wire nonce (a session-unique counter).
    fn next_nonce(&self) -> [u8; NONCE_LEN] {
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&n.to_le_bytes());
        nonce
    }

    /// Client side: encrypts `plain` into a wire message. Runs outside
    /// the measured cores, so no cycles are charged.
    #[must_use]
    pub fn encrypt(&self, plain: &[u8]) -> Vec<u8> {
        let nonce = self.next_nonce();
        let mut msg = Vec::with_capacity(NONCE_LEN + plain.len());
        msg.extend_from_slice(&nonce);
        msg.extend_from_slice(plain);
        self.ctr.apply(&nonce, &mut msg[NONCE_LEN..]);
        msg
    }

    /// Charges the cost model for a batch of crypto passes over
    /// messages of the given lengths and bumps the pipeline stats.
    ///
    /// With `amortize` the batch leader pays the full `crypto_fixed`
    /// setup and follow-ons a quarter; without it every message pays
    /// the full setup — the per-message baseline `repro crypto_bench`
    /// compares against. Delegates to
    /// [`ThreadCtx::charge_crypto_batch`], the single owner of the
    /// `Costs::crypto_batch_fixed` amortization contract (shared with
    /// the SUVM write-back drain).
    fn charge_batch(&self, ctx: &mut ThreadCtx, lens: impl Iterator<Item = usize>, amortize: bool) {
        ctx.charge_crypto_batch(lens, amortize);
    }

    /// Server side: decrypts a sorted batch of wire messages in one
    /// [`Sealer::open_batch`] pass, charging `ctx` per message (with
    /// the setup amortized across the batch when `amortize` is set).
    ///
    /// # Panics
    /// Panics on a message shorter than the nonce prefix.
    #[must_use]
    pub fn decrypt_batch_in_enclave(
        &self,
        ctx: &mut ThreadCtx,
        msgs: &[&[u8]],
        amortize: bool,
    ) -> Vec<Vec<u8>> {
        if msgs.is_empty() {
            return Vec::new();
        }
        let mut plains: Vec<Vec<u8>> = msgs
            .iter()
            .map(|m| {
                assert!(m.len() >= NONCE_LEN, "short wire message");
                m[NONCE_LEN..].to_vec()
            })
            .collect();
        let mut jobs: Vec<OpenJob<'_>> = msgs
            .iter()
            .zip(plains.iter_mut())
            .map(|(m, p)| OpenJob {
                nonce: m[..NONCE_LEN].try_into().expect("len checked"),
                aad: &[],
                data: p.as_mut_slice(),
                tag: [0u8; 16],
            })
            .collect();
        self.open_batch(&mut jobs)
            .expect("CTR wire decrypt is unauthenticated");
        drop(jobs);
        self.charge_batch(ctx, plains.iter().map(Vec::len), amortize);
        plains
    }

    /// Server side: encrypts a batch of responses in one
    /// [`Sealer::seal_batch`] pass, charging `ctx` per message (with
    /// the setup amortized across the batch when `amortize` is set).
    #[must_use]
    pub fn encrypt_batch_in_enclave(
        &self,
        ctx: &mut ThreadCtx,
        plains: &[&[u8]],
        amortize: bool,
    ) -> Vec<Vec<u8>> {
        if plains.is_empty() {
            return Vec::new();
        }
        self.charge_batch(ctx, plains.iter().map(|p| p.len()), amortize);
        let mut msgs: Vec<Vec<u8>> = plains
            .iter()
            .map(|p| {
                let nonce = self.next_nonce();
                let mut msg = Vec::with_capacity(NONCE_LEN + p.len());
                msg.extend_from_slice(&nonce);
                msg.extend_from_slice(p);
                msg
            })
            .collect();
        let mut jobs: Vec<SealJob<'_>> = msgs
            .iter_mut()
            .map(|m| {
                let (nonce, body) = m.split_at_mut(NONCE_LEN);
                SealJob {
                    nonce: (&*nonce).try_into().expect("nonce prefix"),
                    aad: &[],
                    data: body,
                }
            })
            .collect();
        let _zero_tags = self.seal_batch(&mut jobs);
        drop(jobs);
        msgs
    }

    /// Server side: decrypts a wire message in place (strips the
    /// nonce), charging the AES cost to `ctx`. A thin wrapper over a
    /// batch of one.
    #[must_use]
    pub fn decrypt_in_enclave(&self, ctx: &mut ThreadCtx, msg: &[u8]) -> Vec<u8> {
        self.decrypt_batch_in_enclave(ctx, &[msg], false)
            .pop()
            .expect("a batch of one yields one message")
    }

    /// Server side: encrypts a response, charging `ctx`. A thin
    /// wrapper over a batch of one.
    #[must_use]
    pub fn encrypt_in_enclave(&self, ctx: &mut ThreadCtx, plain: &[u8]) -> Vec<u8> {
        self.encrypt_batch_in_enclave(ctx, &[plain], false)
            .pop()
            .expect("a batch of one yields one message")
    }

    /// Client side: decrypts a response.
    #[must_use]
    pub fn decrypt(&self, msg: &[u8]) -> Vec<u8> {
        assert!(msg.len() >= NONCE_LEN, "short wire message");
        let nonce: [u8; NONCE_LEN] = msg[..NONCE_LEN].try_into().expect("len checked");
        let mut plain = msg[NONCE_LEN..].to_vec();
        self.ctr.apply(&nonce, &mut plain);
        plain
    }
}

/// The wire codec *is* a sealer: the session's CTR cipher, batched.
/// Unauthenticated (§5 wire crypto carries no tag); SUVM page sealing
/// uses the GCM sealers for integrity instead.
impl Sealer for Wire {
    fn name(&self) -> &'static str {
        "wire-ctr"
    }

    fn seal_batch(&self, jobs: &mut [SealJob<'_>]) -> Vec<Tag> {
        self.ctr.seal_batch(jobs)
    }

    fn open_batch(&self, jobs: &mut [OpenJob<'_>]) -> Result<(), BatchAuthError> {
        self.ctr.open_batch(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    #[test]
    fn roundtrip_and_confidentiality() {
        let w = Wire::new([9u8; 16]);
        let msg = w.encrypt(b"top secret request");
        assert!(!msg.windows(10).any(|s| s == b"top secret"));
        assert_eq!(w.decrypt(&msg), b"top secret request");
    }

    #[test]
    fn nonces_differ_between_messages() {
        let w = Wire::new([9u8; 16]);
        let a = w.encrypt(b"same plaintext");
        let b = w.encrypt(b"same plaintext");
        assert_ne!(a, b, "same plaintext must not repeat on the wire");
    }

    #[test]
    fn enclave_side_charges_cycles() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let w = Wire::new([1u8; 16]);
        let msg = w.encrypt(&vec![5u8; 4096]);
        let c0 = t.now();
        let plain = w.decrypt_in_enclave(&mut t, &msg);
        assert!(t.now() - c0 >= m.cfg.costs.crypto(4096));
        assert_eq!(plain, vec![5u8; 4096]);
        t.exit();
    }

    #[test]
    fn batched_decrypt_matches_per_message() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let w = Wire::new([3u8; 16]);
        let plains: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 40 + i as usize]).collect();
        let msgs: Vec<Vec<u8>> = plains.iter().map(|p| w.encrypt(p)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let out = w.decrypt_batch_in_enclave(&mut t, &refs, true);
        assert_eq!(out, plains);
        t.exit();
    }

    #[test]
    fn amortized_batch_charges_less_and_counts_stats() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let w = Wire::new([7u8; 16]);
        let msgs: Vec<Vec<u8>> = (0..8).map(|_| w.encrypt(&[0xabu8; 64])).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();

        let s0 = m.stats.snapshot();
        let c0 = t.now();
        let _ = w.decrypt_batch_in_enclave(&mut t, &refs, false);
        let per_msg = t.now() - c0;

        let c1 = t.now();
        let _ = w.decrypt_batch_in_enclave(&mut t, &refs, true);
        let amortized = t.now() - c1;
        let d = m.stats.snapshot() - s0;

        // 8 messages: per-message pays 8 full setups, amortized pays
        // 1 full + 7 quarters.
        let full = m.cfg.costs.crypto_fixed;
        assert_eq!(per_msg - amortized, 7 * (full - full / 4));
        assert_eq!(d.crypto_batches, 2);
        assert_eq!(d.crypto_msgs, 16);
        assert_eq!(d.crypto_setup_cycles, 8 * full + full + 7 * (full / 4));
        t.exit();
    }

    #[test]
    fn batched_encrypt_decrypts_on_the_client() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let w = Wire::new([5u8; 16]);
        let plains: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i ^ 0x5a; 33]).collect();
        let refs: Vec<&[u8]> = plains.iter().map(Vec::as_slice).collect();
        let msgs = w.encrypt_batch_in_enclave(&mut t, &refs, true);
        assert_eq!(msgs.len(), plains.len());
        for (msg, plain) in msgs.iter().zip(plains.iter()) {
            assert!(!msg[NONCE_LEN..].windows(8).any(|s| s == &plain[..8]));
            assert_eq!(&w.decrypt(msg), plain);
        }
        t.exit();
    }
}
