//! Wire sessions: attestation handshake, epoch key rotation, and
//! on-the-wire request encryption (paper §5).
//!
//! All three evaluation servers "decrypt/encrypt each request/response
//! from within the enclave using AES-NI hardware acceleration in CTR
//! mode with a randomized 128-bit key". The wire format is
//! `nonce (12) || ciphertext`; the CTR pass is performed for real (the
//! tests check confidentiality end to end) and its cycle cost is
//! charged at AES-NI rates through the cost model.
//!
//! # Session lifecycle
//!
//! A [`Session`] replaces the old static-key `Wire` and walks an
//! explicit state machine:
//!
//! ```text
//! Handshake --verify(evidence)--> Established(epoch)
//!      Established(e) --begin_rekey--> Rekeying{from: e, to: e+1}
//!      Rekeying --old epoch drained--> Established(e+1)
//!      any state --revoke--> Revoked (terminal)
//! ```
//!
//! - **Handshake**: the enclave produces attestation *evidence* — an
//!   `EREPORT`-style report, modeled as an AES-GCM MAC under the
//!   session master key over the enclave identity and a fresh session
//!   nonce — and the client verifies it ([`Session::verify`]) before
//!   sending any data message. Replayed nonces and evidence over the
//!   wrong identity are rejected (`auth_failures`).
//! - **Rotation**: traffic keys are *derived per epoch* from the
//!   master through the sealer seam ([`eleos_crypto::derive_key`]),
//!   and rotation is double-buffered: [`Session::begin_rekey`] makes
//!   epoch `e+1` current while keeping epoch `e` in the buffer, so
//!   in-flight reaps sealed under the old epoch keep draining while
//!   new arrivals seal under the new one — no serving-path stall. The
//!   open path retires the label once a reap contains no old-epoch
//!   messages; the old *key* dies only when the next rotation
//!   overwrites its buffer slot.
//! - **Revocation**: [`Session::revoke`] is terminal — every queued or
//!   future message on the session is dropped and counted, never
//!   served.
//!
//! Each message's epoch tag rides in the nonce prefix (bytes 8..12,
//! little-endian), so the wire format and message sizes are unchanged
//! and epoch 0 frames exactly like the pre-session codec.
//!
//! # One seal path, one open path
//!
//! The serving path works in *batches*:
//! [`Session::decrypt_batch_in_enclave`] opens a whole sorted reap in
//! one [`Sealer::open_batch`] pass and
//! [`Session::encrypt_batch_in_enclave`] seals all responses in one
//! [`Sealer::seal_batch`] pass. With `amortize` set, the cipher setup
//! is charged once per batch — the leader pays the full
//! `crypto_fixed`, follow-ons a quarter (`CostModel::crypto_batched`,
//! the same contract the SUVM write-back drain uses) — which is where
//! the batched crypto pipeline's cycles/op win comes from on a single
//! serving core. The client-side [`Session::encrypt`]/
//! [`Session::decrypt`] helpers are uncharged batches of one over the
//! same two paths; there are no other entry points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use eleos_crypto::ctr::Ctr128;
use eleos_crypto::gcm::{AesGcm128, Tag};
use eleos_crypto::{ct_eq, derive_key, AuthError, BatchAuthError, OpenJob, SealJob, Sealer};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;

/// Length of the nonce prefix on every message.
pub const NONCE_LEN: usize = 12;

/// Byte offset of the little-endian epoch tag inside the nonce.
pub const EPOCH_OFFSET: usize = 8;

/// Domain-separation label for wire traffic keys under the master.
const WIRE_LABEL: &[u8; 4] = b"wire";

/// Where a [`Session`] is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Keys exist but no data may flow until the attestation evidence
    /// verifies.
    Handshake,
    /// Serving normally under the given key epoch.
    Established(u32),
    /// A rotation is in flight: new arrivals seal under `to`, reaps
    /// sealed under `from` are still draining.
    Rekeying {
        /// The epoch being retired.
        from: u32,
        /// The epoch now current.
        to: u32,
    },
    /// Terminal: every message is dropped, the shard slot is dead.
    Revoked,
}

/// A wire session shared by the load generator ("clients") and the
/// server: master key, attested identity, lifecycle state, and the
/// double-buffered epoch traffic keys.
pub struct Session {
    master: [u8; 16],
    identity: [u8; 16],
    state: Mutex<SessionState>,
    /// Double-buffered epoch keys, `[current, previous]`. Opens accept
    /// either epoch; seals always use the current one.
    keys: RwLock<[(u32, Ctr128); 2]>,
    counter: AtomicU64,
    /// Highest handshake nonce ever accepted (replay floor).
    last_nonce: AtomicU64,
}

impl Session {
    fn with_state(master: [u8; 16], identity: [u8; 16], state: SessionState) -> Self {
        let k0 = Ctr128::new(&derive_key(&master, WIRE_LABEL, 0));
        Self {
            master,
            identity,
            state: Mutex::new(state),
            keys: RwLock::new([(0, k0.clone()), (0, k0)]),
            counter: AtomicU64::new(1),
            last_nonce: AtomicU64::new(0),
        }
    }

    /// Creates a session awaiting its attestation handshake: the
    /// serving enclave's `identity` must be proven to the client
    /// ([`Session::evidence`]/[`Session::verify`]) before any data
    /// message flows.
    #[must_use]
    pub fn handshake(master: [u8; 16], identity: [u8; 16]) -> Self {
        Self::with_state(master, identity, SessionState::Handshake)
    }

    /// Creates a pre-shared session, already established at epoch 0 —
    /// the shortcut for tests and closed-world benches where the
    /// handshake is out of scope.
    #[must_use]
    pub fn established(master: [u8; 16]) -> Self {
        Self::with_state(master, [0u8; 16], SessionState::Established(0))
    }

    /// The enclave identity this session attests.
    #[must_use]
    pub fn identity(&self) -> [u8; 16] {
        self.identity
    }

    /// The current lifecycle state.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn state(&self) -> SessionState {
        *self.state.lock().expect("session state poisoned")
    }

    /// The current (sealing) key epoch.
    ///
    /// # Panics
    /// Panics if the key lock is poisoned.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.keys.read().expect("session keys poisoned")[0].0
    }

    /// A fresh handshake nonce: one past the highest ever accepted, so
    /// an honest handshake always clears the replay floor.
    #[must_use]
    pub fn fresh_nonce(&self) -> u64 {
        self.last_nonce.load(Ordering::Relaxed) + 1
    }

    /// The attestation report over `(identity, nonce)`: an AES-GCM MAC
    /// under the master key, standing in for the `EREPORT` MAC a real
    /// enclave would produce. Charges the handshake cost to `ctx` (the
    /// enclave side pays it, once per session — never per request).
    #[must_use]
    pub fn evidence(&self, ctx: &mut ThreadCtx, nonce: u64) -> [u8; 16] {
        ctx.compute(ctx.machine.cfg.costs.session_handshake);
        Self::report_mac(&self.master, &self.identity, nonce)
    }

    fn report_mac(master: &[u8; 16], identity: &[u8; 16], nonce: u64) -> Tag {
        let gcm = AesGcm128::new(master);
        let mut n = [0u8; NONCE_LEN];
        n[..8].copy_from_slice(&nonce.to_le_bytes());
        gcm.seal(&n, identity, &mut [])
    }

    /// Client side of the handshake: checks `report` is a fresh MAC
    /// over the `identity` the client expects, in constant time.
    /// Success establishes the session at epoch 0 and raises the
    /// replay floor; any failure — stale nonce or wrong identity — is
    /// counted as an auth failure and leaves the session unusable.
    ///
    /// # Errors
    /// [`AuthError`] when the nonce does not clear the replay floor or
    /// the report does not match the expected identity.
    pub fn verify(
        &self,
        ctx: &mut ThreadCtx,
        identity: &[u8; 16],
        nonce: u64,
        report: &[u8; 16],
    ) -> Result<(), AuthError> {
        let expected = Self::report_mac(&self.master, identity, nonce);
        let fresh = nonce > self.last_nonce.load(Ordering::Relaxed);
        if !(ct_eq(&expected, report) && fresh) {
            Stats::bump(&ctx.machine.stats.auth_failures);
            return Err(AuthError);
        }
        self.last_nonce.store(nonce, Ordering::Relaxed);
        *self.state.lock().expect("session state poisoned") = SessionState::Established(0);
        Stats::bump(&ctx.machine.stats.session_handshakes);
        Ok(())
    }

    /// Starts a key rotation: derives the next epoch's traffic key
    /// through the sealer seam and makes it current, keeping the old
    /// epoch in the buffer so in-flight reaps keep draining — the
    /// serving path never stalls. Charges the derivation to `ctx`.
    ///
    /// # Panics
    /// Panics unless the session is `Established` (a still-draining
    /// rotation must [`finish_rekey`](Self::finish_rekey) first).
    pub fn begin_rekey(&self, ctx: &mut ThreadCtx) {
        let mut st = self.state.lock().expect("session state poisoned");
        let from = match *st {
            SessionState::Established(e) => e,
            other => panic!("begin_rekey on a session in {other:?}"),
        };
        let to = from + 1;
        let next = Ctr128::new(&derive_key(&self.master, WIRE_LABEL, to));
        {
            let mut keys = self.keys.write().expect("session keys poisoned");
            let current = keys[0].clone();
            *keys = [(to, next), current];
        }
        *st = SessionState::Rekeying { from, to };
        drop(st);
        ctx.compute(ctx.machine.cfg.costs.session_rekey);
        Stats::bump(&ctx.machine.stats.rekeys);
    }

    /// Retires a rotation's *label*: `Rekeying{to} -> Established(to)`.
    /// A no-op in any other state. The old epoch's key stays in the
    /// buffer (opens still accept it) until the next rotation
    /// overwrites its slot — which is what makes partial drains across
    /// replicas safe.
    pub fn finish_rekey(&self) {
        let mut st = self.state.lock().expect("session state poisoned");
        if let SessionState::Rekeying { to, .. } = *st {
            *st = SessionState::Established(to);
        }
    }

    /// Revokes the session (terminal): every queued or future message
    /// is dropped and counted instead of served.
    pub fn revoke(&self, ctx: &ThreadCtx) {
        *self.state.lock().expect("session state poisoned") = SessionState::Revoked;
        Stats::bump(&ctx.machine.stats.revocations);
    }

    fn epoch_of(nonce: &[u8; NONCE_LEN]) -> u32 {
        u32::from_le_bytes(nonce[EPOCH_OFFSET..].try_into().expect("4-byte epoch tag"))
    }

    /// The traffic key for `epoch`, when it is still in the double
    /// buffer.
    fn ctr_for(&self, epoch: u32) -> Option<Ctr128> {
        self.keys
            .read()
            .expect("session keys poisoned")
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, ctr)| ctr.clone())
    }

    /// The one seal path: frames each plaintext as
    /// `nonce(counter, epoch) || ciphertext` under the current epoch
    /// and seals the whole batch in one [`Sealer::seal_batch`] pass.
    ///
    /// # Panics
    /// Panics when the session has not completed its handshake or has
    /// been revoked.
    fn seal_raw(&self, plains: &[&[u8]]) -> Vec<Vec<u8>> {
        match self.state() {
            SessionState::Handshake => {
                panic!("sealed before the handshake established the session")
            }
            SessionState::Revoked => panic!("sealed on a revoked session"),
            SessionState::Established(_) | SessionState::Rekeying { .. } => {}
        }
        let epoch = self.epoch();
        let mut msgs: Vec<Vec<u8>> = plains
            .iter()
            .map(|p| {
                let n = self.counter.fetch_add(1, Ordering::Relaxed);
                let mut msg = Vec::with_capacity(NONCE_LEN + p.len());
                msg.extend_from_slice(&n.to_le_bytes());
                msg.extend_from_slice(&epoch.to_le_bytes());
                msg.extend_from_slice(p);
                msg
            })
            .collect();
        let mut jobs: Vec<SealJob<'_>> = msgs
            .iter_mut()
            .map(|m| {
                let (nonce, body) = m.split_at_mut(NONCE_LEN);
                SealJob {
                    nonce: (&*nonce).try_into().expect("nonce prefix"),
                    aad: &[],
                    data: body,
                }
            })
            .collect();
        let _zero_tags = self.seal_batch(&mut jobs);
        drop(jobs);
        msgs
    }

    /// The one open path: decrypts every message whose epoch tag is
    /// still in the key buffer in one [`Sealer::open_batch`] pass, and
    /// *drops* the rest — revoked sessions drop everything. Returns
    /// the accepted plaintexts (reap order preserved) and the dropped
    /// count. Once a nonempty reap carries no old-epoch messages, an
    /// in-flight rotation's label is retired.
    ///
    /// # Panics
    /// Panics when the session has not completed its handshake, or on
    /// a message shorter than the nonce prefix.
    fn open_raw(&self, msgs: &[&[u8]]) -> (Vec<Vec<u8>>, usize) {
        if msgs.is_empty() {
            return (Vec::new(), 0);
        }
        let state = self.state();
        assert!(
            state != SessionState::Handshake,
            "opened before the handshake established the session"
        );
        let revoked = state == SessionState::Revoked;
        let rekeying_from = match state {
            SessionState::Rekeying { from, .. } => Some(from),
            _ => None,
        };
        let mut dropped = 0usize;
        let mut old_in_flight = false;
        let mut nonces: Vec<[u8; NONCE_LEN]> = Vec::with_capacity(msgs.len());
        let mut plains: Vec<Vec<u8>> = Vec::with_capacity(msgs.len());
        for m in msgs {
            assert!(m.len() >= NONCE_LEN, "short wire message");
            let nonce: [u8; NONCE_LEN] = m[..NONCE_LEN].try_into().expect("len checked");
            let epoch = Self::epoch_of(&nonce);
            if revoked || self.ctr_for(epoch).is_none() {
                dropped += 1;
                continue;
            }
            old_in_flight |= rekeying_from == Some(epoch);
            nonces.push(nonce);
            plains.push(m[NONCE_LEN..].to_vec());
        }
        let mut jobs: Vec<OpenJob<'_>> = nonces
            .iter()
            .zip(plains.iter_mut())
            .map(|(nonce, p)| OpenJob {
                nonce: *nonce,
                aad: &[],
                data: p.as_mut_slice(),
                tag: [0u8; 16],
            })
            .collect();
        self.open_batch(&mut jobs)
            .expect("CTR wire decrypt is unauthenticated");
        drop(jobs);
        if rekeying_from.is_some() && !old_in_flight && !plains.is_empty() {
            self.finish_rekey();
        }
        (plains, dropped)
    }

    /// Client side: encrypts `plain` into a wire message under the
    /// current epoch. Runs outside the measured cores, so no cycles
    /// are charged.
    ///
    /// # Panics
    /// Panics when the session is not established (see
    /// [`seal_raw`](Self::seal_raw)).
    #[must_use]
    pub fn encrypt(&self, plain: &[u8]) -> Vec<u8> {
        self.seal_raw(&[plain])
            .pop()
            .expect("a batch of one yields one message")
    }

    /// Client side: decrypts a response.
    ///
    /// # Panics
    /// Panics when the message was dropped — sealed under an epoch no
    /// longer in the key buffer, or the session was revoked.
    #[must_use]
    pub fn decrypt(&self, msg: &[u8]) -> Vec<u8> {
        let (mut plains, dropped) = self.open_raw(&[msg]);
        assert_eq!(
            dropped, 0,
            "response dropped: epoch outside the key buffer or session revoked"
        );
        plains.pop().expect("a batch of one yields one message")
    }

    /// Server side: decrypts a sorted batch of wire messages in one
    /// [`Sealer::open_batch`] pass, charging `ctx` per accepted
    /// message (with the setup amortized across the batch when
    /// `amortize` is set). Messages the session refuses — unknown
    /// epoch, or any message on a revoked session — are dropped and
    /// counted into `auth_failures`, never served and never charged.
    ///
    /// # Panics
    /// Panics on a message shorter than the nonce prefix.
    #[must_use]
    pub fn decrypt_batch_in_enclave(
        &self,
        ctx: &mut ThreadCtx,
        msgs: &[&[u8]],
        amortize: bool,
    ) -> Vec<Vec<u8>> {
        if msgs.is_empty() {
            return Vec::new();
        }
        let (plains, dropped) = self.open_raw(msgs);
        if dropped > 0 {
            Stats::add(&ctx.machine.stats.auth_failures, dropped as u64);
        }
        if !plains.is_empty() {
            ctx.charge_crypto_batch(plains.iter().map(Vec::len), amortize);
        }
        plains
    }

    /// Server side: encrypts a batch of responses in one
    /// [`Sealer::seal_batch`] pass under the current epoch, charging
    /// `ctx` per message (with the setup amortized across the batch
    /// when `amortize` is set).
    #[must_use]
    pub fn encrypt_batch_in_enclave(
        &self,
        ctx: &mut ThreadCtx,
        plains: &[&[u8]],
        amortize: bool,
    ) -> Vec<Vec<u8>> {
        if plains.is_empty() {
            return Vec::new();
        }
        ctx.charge_crypto_batch(plains.iter().map(|p| p.len()), amortize);
        self.seal_raw(plains)
    }
}

/// The wire codec *is* a sealer: each job is dispatched to the epoch
/// key its nonce tag names, so both key epochs of an in-flight
/// rotation open correctly in one batch. Unauthenticated (§5 wire
/// crypto carries no tag); SUVM page sealing uses the GCM sealers for
/// integrity instead.
impl Sealer for Session {
    fn name(&self) -> &'static str {
        "wire-ctr"
    }

    fn seal_batch(&self, jobs: &mut [SealJob<'_>]) -> Vec<Tag> {
        jobs.iter_mut()
            .map(|job| {
                let ctr = self
                    .ctr_for(Self::epoch_of(&job.nonce))
                    .expect("sealing under an epoch outside the session key buffer");
                ctr.seal(&job.nonce, job.aad, job.data)
            })
            .collect()
    }

    fn open_batch(&self, jobs: &mut [OpenJob<'_>]) -> Result<(), BatchAuthError> {
        for (index, job) in jobs.iter_mut().enumerate() {
            let Some(ctr) = self.ctr_for(Self::epoch_of(&job.nonce)) else {
                return Err(BatchAuthError { index });
            };
            ctr.open(&job.nonce, job.aad, job.data, &job.tag)
                .map_err(|_| BatchAuthError { index })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    #[test]
    fn roundtrip_and_confidentiality() {
        let s = Session::established([9u8; 16]);
        let msg = s.encrypt(b"top secret request");
        assert!(!msg.windows(10).any(|w| w == b"top secret"));
        assert_eq!(s.decrypt(&msg), b"top secret request");
    }

    #[test]
    fn nonces_differ_between_messages() {
        let s = Session::established([9u8; 16]);
        let a = s.encrypt(b"same plaintext");
        let b = s.encrypt(b"same plaintext");
        assert_ne!(a, b, "same plaintext must not repeat on the wire");
    }

    #[test]
    fn enclave_side_charges_cycles() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([1u8; 16]);
        let msg = s.encrypt(&vec![5u8; 4096]);
        let c0 = t.now();
        let plain = s
            .decrypt_batch_in_enclave(&mut t, &[&msg], false)
            .pop()
            .expect("a batch of one yields one message");
        assert!(t.now() - c0 >= m.cfg.costs.crypto(4096));
        assert_eq!(plain, vec![5u8; 4096]);
        t.exit();
    }

    #[test]
    fn batched_decrypt_matches_per_message() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([3u8; 16]);
        let plains: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 40 + i as usize]).collect();
        let msgs: Vec<Vec<u8>> = plains.iter().map(|p| s.encrypt(p)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let out = s.decrypt_batch_in_enclave(&mut t, &refs, true);
        assert_eq!(out, plains);
        t.exit();
    }

    #[test]
    fn amortized_batch_charges_less_and_counts_stats() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([7u8; 16]);
        let msgs: Vec<Vec<u8>> = (0..8).map(|_| s.encrypt(&[0xabu8; 64])).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();

        let s0 = m.stats.snapshot();
        let c0 = t.now();
        let _ = s.decrypt_batch_in_enclave(&mut t, &refs, false);
        let per_msg = t.now() - c0;

        let c1 = t.now();
        let _ = s.decrypt_batch_in_enclave(&mut t, &refs, true);
        let amortized = t.now() - c1;
        let d = m.stats.snapshot() - s0;

        // 8 messages: per-message pays 8 full setups, amortized pays
        // 1 full + 7 quarters.
        let full = m.cfg.costs.crypto_fixed;
        assert_eq!(per_msg - amortized, 7 * (full - full / 4));
        assert_eq!(d.crypto_batches, 2);
        assert_eq!(d.crypto_msgs, 16);
        assert_eq!(d.crypto_setup_cycles, 8 * full + full + 7 * (full / 4));
        t.exit();
    }

    #[test]
    fn batched_encrypt_decrypts_on_the_client() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([5u8; 16]);
        let plains: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i ^ 0x5a; 33]).collect();
        let refs: Vec<&[u8]> = plains.iter().map(Vec::as_slice).collect();
        let msgs = s.encrypt_batch_in_enclave(&mut t, &refs, true);
        assert_eq!(msgs.len(), plains.len());
        for (msg, plain) in msgs.iter().zip(plains.iter()) {
            assert!(!msg[NONCE_LEN..].windows(8).any(|w| w == &plain[..8]));
            assert_eq!(&s.decrypt(msg), plain);
        }
        t.exit();
    }

    #[test]
    fn handshake_establishes_the_session() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut ut = eleos_enclave::thread::ThreadCtx::untrusted(&m, 0);
        let s = Session::handshake([0x11u8; 16], [0x22u8; 16]);
        assert_eq!(s.state(), SessionState::Handshake);
        let nonce = s.fresh_nonce();
        let c0 = ut.now();
        let report = s.evidence(&mut ut, nonce);
        assert!(ut.now() - c0 >= m.cfg.costs.session_handshake);
        s.verify(&mut ut, &s.identity(), nonce, &report)
            .expect("honest evidence must verify");
        assert_eq!(s.state(), SessionState::Established(0));
        let st = m.stats.snapshot();
        assert_eq!(st.session_handshakes, 1);
        assert_eq!(st.auth_failures, 0);
    }

    #[test]
    #[should_panic(expected = "before the handshake established")]
    fn unestablished_session_refuses_to_seal() {
        let s = Session::handshake([0x11u8; 16], [0x22u8; 16]);
        let _ = s.encrypt(b"too early");
    }

    #[test]
    fn epoch_tag_rides_the_nonce() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut ut = eleos_enclave::thread::ThreadCtx::untrusted(&m, 0);
        let s = Session::established([4u8; 16]);
        let before = s.encrypt(b"epoch zero");
        assert_eq!(&before[EPOCH_OFFSET..NONCE_LEN], &0u32.to_le_bytes());
        s.begin_rekey(&mut ut);
        let after = s.encrypt(b"epoch one");
        assert_eq!(&after[EPOCH_OFFSET..NONCE_LEN], &1u32.to_le_bytes());
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn rekey_drains_the_old_epoch_without_a_stall() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([6u8; 16]);
        let in_flight = s.encrypt(b"sealed under the old epoch");
        s.begin_rekey(&mut t);
        assert_eq!(s.state(), SessionState::Rekeying { from: 0, to: 1 });
        let fresh = s.encrypt(b"sealed under the new epoch");
        // A mixed reap opens both epochs in one pass and keeps the
        // rotation draining (an old-epoch message was present).
        let out = s.decrypt_batch_in_enclave(&mut t, &[&in_flight[..], &fresh[..]], true);
        assert_eq!(out[0], b"sealed under the old epoch");
        assert_eq!(out[1], b"sealed under the new epoch");
        assert_eq!(s.state(), SessionState::Rekeying { from: 0, to: 1 });
        // The first reap with no old-epoch traffic retires the label.
        let later = s.encrypt(b"post-drain");
        let _ = s.decrypt_batch_in_enclave(&mut t, &[&later[..]], true);
        assert_eq!(s.state(), SessionState::Established(1));
        let st = m.stats.snapshot();
        assert_eq!(st.rekeys, 1);
        assert_eq!(st.auth_failures, 0);
        t.exit();
    }

    #[test]
    fn expired_epoch_messages_are_dropped_and_counted() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s = Session::established([8u8; 16]);
        let stale = s.encrypt(b"epoch 0 straggler");
        s.begin_rekey(&mut t);
        s.finish_rekey();
        s.begin_rekey(&mut t);
        // Two rotations later epoch 0 has left the double buffer: the
        // straggler is dropped, the fresh message still opens.
        let fresh = s.encrypt(b"epoch 2");
        let out = s.decrypt_batch_in_enclave(&mut t, &[&stale[..], &fresh[..]], true);
        assert_eq!(out, vec![b"epoch 2".to_vec()]);
        assert_eq!(m.stats.snapshot().auth_failures, 1);
        t.exit();
    }
}
