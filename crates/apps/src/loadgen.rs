//! Load generators for the evaluation workloads (paper §6).
//!
//! These play the role of the paper's client machine: memaslap for
//! memcached, the custom update generator for the parameter server and
//! the FERET-driven request stream for face verification. All are
//! seeded for reproducibility and produce encrypted wire messages.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use eleos_enclave::host::Fd;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

use crate::face;
use crate::kvs;
use crate::param_server::build_update_request;
use crate::wire::Session;

/// A Zipf(α) sampler over `0..n` by inverse-CDF table lookup —
/// key-value workloads are rarely uniform in production, and memaslap
/// supports skewed key distributions.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table for `n` items with exponent
    /// `alpha` (0 = uniform; ~0.99 is the classic web/KVS skew).
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws an index in `0..n` (0 is the hottest item).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Parameter-server update stream (the §2 workload).
pub struct ParamLoad {
    rng: StdRng,
    /// Total key universe (server data size / 16 bytes).
    pub n_keys: u64,
    /// Keys updated per request (the x-axis of Figs 2 and 6).
    pub keys_per_req: usize,
    /// Restrict updates to the first `hot` keys (Fig 2a's 8 MB hot
    /// set), if set.
    pub hot: Option<u64>,
}

impl ParamLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_keys: u64, keys_per_req: usize, hot: Option<u64>) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_keys,
            keys_per_req,
            hot,
        }
    }

    /// Next request plaintext.
    pub fn next_plain(&mut self) -> Vec<u8> {
        let range = self.hot.unwrap_or(self.n_keys).min(self.n_keys);
        let updates: Vec<(u64, u64)> = (0..self.keys_per_req)
            .map(|_| (self.rng.random_range(1..=range), 1u64))
            .collect();
        build_update_request(&updates)
    }
}

/// memaslap-style key-value load (paper §6.2.2): a fill phase that
/// SETs every item, then uniform-random GETs over the full item set.
pub struct KvsLoad {
    rng: StdRng,
    /// Number of items.
    pub n_items: u64,
    /// Key size in bytes (paper: 20 B).
    pub key_len: usize,
    /// Value size in bytes (paper: 1 KiB / 4 KiB).
    pub value_len: usize,
}

impl KvsLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_items: u64, key_len: usize, value_len: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_items,
            key_len,
            value_len,
        }
    }

    /// The key for item `i`, padded to `key_len`.
    #[must_use]
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("key-{i:012}").into_bytes();
        k.resize(self.key_len, b'x');
        k
    }

    /// Deterministic value contents for item `i`.
    #[must_use]
    pub fn value(&self, i: u64) -> Vec<u8> {
        let b = (i % 251) as u8;
        vec![b; self.value_len]
    }

    /// SET plaintext for item `i` (fill phase).
    #[must_use]
    pub fn set_plain(&self, i: u64) -> Vec<u8> {
        kvs::build_set(&self.key(i), &self.value(i))
    }

    /// Next random GET plaintext, returning `(item, plaintext)`.
    pub fn get_plain(&mut self) -> (u64, Vec<u8>) {
        let i = self.rng.random_range(0..self.n_items);
        (i, kvs::build_get(&self.key(i)))
    }

    /// Next GET drawn from a [`Zipf`] distribution (hot keys first).
    pub fn get_plain_zipf(&mut self, zipf: &Zipf) -> (u64, Vec<u8>) {
        let i = zipf.sample(&mut self.rng) as u64;
        (i, kvs::build_get(&self.key(i)))
    }

    /// Total data-set bytes (what "500 MB of data" means in §6.2.2).
    #[must_use]
    pub fn dataset_bytes(&self) -> u64 {
        self.n_items * (self.key_len + self.value_len) as u64
    }
}

/// Face-verification request stream: random enrolled identities,
/// genuine captures.
pub struct FaceLoad {
    rng: StdRng,
    /// Enrolled identities are `1..=n_ids`.
    pub n_ids: u64,
    /// Image side.
    pub side: usize,
    capture: u64,
}

impl FaceLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_ids: u64, side: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_ids,
            side,
            capture: 0,
        }
    }

    /// Next verification request plaintext (genuine attempt).
    pub fn next_plain(&mut self) -> Vec<u8> {
        let id = self.rng.random_range(1..=self.n_ids);
        self.capture += 1;
        let img = face::synth_capture(id, self.side, self.capture);
        face::build_verify_request(id, self.side, &img)
    }
}

/// Runs the attestation handshake the client side performs before any
/// data message: draws a fresh nonce, asks the enclave for its
/// evidence (the report MAC the enclave pays
/// [`session_handshake`](eleos_sim::costs::CostModel) cycles for) and
/// verifies it against the identity the client expects. Establishes
/// the session at epoch 0.
///
/// # Panics
/// Panics if the evidence does not verify — a load generator attests
/// against the identity it configured, so a failure here is a harness
/// bug, not chaos.
pub fn attest_session(ctx: &mut ThreadCtx, session: &Session) {
    let nonce = session.fresh_nonce();
    let report = session.evidence(ctx, nonce);
    session
        .verify(ctx, &session.identity(), nonce, &report)
        .expect("the load generator attests the identity it configured");
}

/// Pushes `n` encrypted requests from `next_plain` onto `fd`'s queue.
pub fn fill_socket(
    machine: &SgxMachine,
    ctx: &ThreadCtx,
    fd: Fd,
    session: &Session,
    n: usize,
    mut next_plain: impl FnMut() -> Vec<u8>,
) {
    for _ in 0..n {
        machine
            .host
            .push_request(ctx, fd, &session.encrypt(&next_plain()));
    }
}

/// Hashes a client connection id onto one shard of an `n_shards`-wide
/// socket set — the load-generator half of SO_REUSEPORT: every message
/// of a connection lands on the same shard, so per-shard FIFO order is
/// per-connection order. Fibonacci (multiplicative) hashing keeps
/// sequential connection ids well spread.
#[must_use]
pub fn shard_for(conn: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "a socket set needs at least one shard");
    (conn.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % n_shards
}

/// A shared connection→shard indirection over [`shard_for`]'s static
/// Fibonacci pinning.
///
/// The load-generator side routes each arrival through
/// [`ShardMap::route`]; the serving side's rebalancer reads the
/// accumulated per-connection weights and [`ShardMap::repin`]s the
/// heaviest connections off the hottest shard. Re-pins take effect for
/// *future* arrivals only (a migration fence): messages already queued
/// stay on the shard they arrived at, and the rebalancer only runs at
/// sub-batch boundaries, so per-shard FIFO order remains per-connection
/// order across a migration.
pub struct ShardMap {
    n_shards: usize,
    n_replicas: usize,
    inner: std::sync::Mutex<MapInner>,
}

#[derive(Default)]
struct MapInner {
    /// Rebalancer overrides; absent connections use [`shard_for`].
    pins: std::collections::HashMap<u64, usize>,
    /// Arrivals per connection since the last decay (EWMA-ish: halved
    /// at every rebalance so stale hotness fades).
    weights: std::collections::HashMap<u64, u64>,
    /// Which fleet replica currently owns each shard (all zero for
    /// single-replica maps). Reassignments happen only at failover /
    /// rejoin fences, never mid-batch.
    owners: Vec<usize>,
}

impl ShardMap {
    /// A map over `n_shards` shards with no pins (identical to
    /// [`shard_for`] until the first [`Self::repin`]), all owned by
    /// replica 0.
    #[must_use]
    pub fn new(n_shards: usize) -> std::sync::Arc<Self> {
        Self::with_replicas(n_shards, 1)
    }

    /// A map over `n_shards` shards spread round-robin across
    /// `n_replicas` fleet replicas: shard `s` starts owned by replica
    /// `s % n_replicas`, so every replica owns a contiguous-in-stride
    /// slice and the assignment is deterministic (the respawn path
    /// restores exactly this ownership, which keeps kill/respawn
    /// schedules replayable).
    #[must_use]
    pub fn with_replicas(n_shards: usize, n_replicas: usize) -> std::sync::Arc<Self> {
        assert!(n_shards > 0, "a shard map needs at least one shard");
        assert!(n_replicas > 0, "a shard map needs at least one replica");
        std::sync::Arc::new(Self {
            n_shards,
            n_replicas,
            inner: std::sync::Mutex::new(MapInner {
                owners: (0..n_shards).map(|s| s % n_replicas).collect(),
                ..MapInner::default()
            }),
        })
    }

    /// Number of shards the map routes onto.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of fleet replicas the map knows about (1 for maps built
    /// with [`Self::new`]).
    #[must_use]
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// The replica that currently owns `shard`.
    #[must_use]
    pub fn replica_of(&self, shard: usize) -> usize {
        assert!(shard < self.n_shards, "shard out of range");
        self.inner.lock().expect("shard map poisoned").owners[shard]
    }

    /// The shards `replica` currently owns, in ascending order — the
    /// exact subset that replica's `recv_batch_on` reaps.
    #[must_use]
    pub fn shards_of(&self, replica: usize) -> Vec<usize> {
        assert!(replica < self.n_replicas, "replica out of range");
        let inner = self.inner.lock().expect("shard map poisoned");
        (0..self.n_shards)
            .filter(|&s| inner.owners[s] == replica)
            .collect()
    }

    /// Hands `shard` to `replica` — the failover / rejoin fence. Takes
    /// effect at the new owner's next reap; the old owner must already
    /// have answered everything it reaped (quiesced at the fence), so
    /// per-connection FIFO order survives the handoff.
    pub fn reassign(&self, shard: usize, replica: usize) {
        assert!(shard < self.n_shards, "shard out of range");
        assert!(replica < self.n_replicas, "reassign target out of range");
        self.inner.lock().expect("shard map poisoned").owners[shard] = replica;
    }

    /// Routes one arrival all the way down: `conn` → shard → owning
    /// replica. Counts the arrival toward `conn`'s hotness weight.
    pub fn route_replica(&self, conn: u64) -> (usize, usize) {
        let mut inner = self.inner.lock().expect("shard map poisoned");
        *inner.weights.entry(conn).or_insert(0) += 1;
        let s = inner
            .pins
            .get(&conn)
            .copied()
            .unwrap_or_else(|| shard_for(conn, self.n_shards));
        (s, inner.owners[s])
    }

    /// The shard `conn` currently routes to.
    #[must_use]
    pub fn shard_of(&self, conn: u64) -> usize {
        self.inner
            .lock()
            .expect("shard map poisoned")
            .pins
            .get(&conn)
            .copied()
            .unwrap_or_else(|| shard_for(conn, self.n_shards))
    }

    /// Routes one arrival: returns `conn`'s shard and counts the
    /// arrival toward its hotness weight.
    pub fn route(&self, conn: u64) -> usize {
        let mut inner = self.inner.lock().expect("shard map poisoned");
        *inner.weights.entry(conn).or_insert(0) += 1;
        inner
            .pins
            .get(&conn)
            .copied()
            .unwrap_or_else(|| shard_for(conn, self.n_shards))
    }

    /// Pins `conn` to `shard` for all future arrivals.
    pub fn repin(&self, conn: u64, shard: usize) {
        assert!(shard < self.n_shards, "repin target out of range");
        self.inner
            .lock()
            .expect("shard map poisoned")
            .pins
            .insert(conn, shard);
    }

    /// Total arrival weight currently routed to each shard.
    #[must_use]
    pub fn shard_weights(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("shard map poisoned");
        let mut w = vec![0u64; self.n_shards];
        for (&conn, &weight) in &inner.weights {
            let s = inner
                .pins
                .get(&conn)
                .copied()
                .unwrap_or_else(|| shard_for(conn, self.n_shards));
            w[s] += weight;
        }
        w
    }

    /// The up-to-`k` heaviest connections currently routed to `shard`
    /// with their arrival weights, hottest first — the rebalancer
    /// needs the weights to judge whether a move shrinks the hot/cold
    /// gap or overshoots it.
    #[must_use]
    pub fn hottest_conns(&self, shard: usize, k: usize) -> Vec<(u64, u64)> {
        let inner = self.inner.lock().expect("shard map poisoned");
        let mut on_shard: Vec<(u64, u64)> = inner
            .weights
            .iter()
            .filter(|(&conn, _)| {
                inner
                    .pins
                    .get(&conn)
                    .copied()
                    .unwrap_or_else(|| shard_for(conn, self.n_shards))
                    == shard
            })
            .map(|(&conn, &w)| (conn, w))
            .collect();
        on_shard.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        on_shard.truncate(k);
        on_shard
    }

    /// Halves every connection weight (dropping the ones that reach
    /// zero) so hotness tracks the recent past, not the whole run.
    pub fn decay(&self) {
        let mut inner = self.inner.lock().expect("shard map poisoned");
        inner.weights.retain(|_, w| {
            *w /= 2;
            *w > 0
        });
    }
}

/// One fleet-membership change in a chaos schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Kill replica `.0` at the fence (snapshot out, EPC reclaimed,
    /// shards drain to a survivor).
    Kill(usize),
    /// Respawn slot `.0` as a cold replica that restores from the
    /// latest snapshot and takes its original shards back.
    Respawn(usize),
}

/// A deterministic kill/respawn schedule keyed to request-count
/// fences: the driver asks [`ChaosPlan::take_due`] after each pushed
/// chunk and applies whatever came due, so the same seed + plan always
/// replays the same failure at the same point in the load — chaos that
/// is reproducible enough to assert byte-identical replies against an
/// unkilled baseline.
pub struct ChaosPlan {
    /// `(requests_pushed_fence, action)`, sorted by fence.
    events: Vec<(usize, ChaosAction)>,
    next: usize,
}

impl ChaosPlan {
    /// A plan from explicit `(fence, action)` pairs (sorted
    /// internally; ties fire in the given order).
    #[must_use]
    pub fn new(mut events: Vec<(usize, ChaosAction)>) -> Self {
        events.sort_by_key(|&(at, _)| at);
        Self { events, next: 0 }
    }

    /// The classic chaos cell: kill `victim` once `kill_at` requests
    /// have been pushed, respawn it at `respawn_at`.
    #[must_use]
    pub fn kill_respawn(victim: usize, kill_at: usize, respawn_at: usize) -> Self {
        assert!(kill_at < respawn_at, "a replica must die before it rejoins");
        Self::new(vec![
            (kill_at, ChaosAction::Kill(victim)),
            (respawn_at, ChaosAction::Respawn(victim)),
        ])
    }

    /// Kill-only (the replica stays dead for the rest of the run).
    #[must_use]
    pub fn kill_at(victim: usize, at: usize) -> Self {
        Self::new(vec![(at, ChaosAction::Kill(victim))])
    }

    /// Actions whose fence is `<= pushed`, in schedule order; each is
    /// returned exactly once.
    pub fn take_due(&mut self, pushed: usize) -> Vec<ChaosAction> {
        let mut due = Vec::new();
        while self.next < self.events.len() && self.events[self.next].0 <= pushed {
            due.push(self.events[self.next].1);
            self.next += 1;
        }
        due
    }

    /// True once every scheduled action has fired.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.next == self.events.len()
    }
}

/// Which connection the next request arrives on — the arrival-pattern
/// half of the serving-bench load shapes (`loadgen` owns *who* sends;
/// the bench owns *when*).
pub struct ConnStream {
    kind: StreamKind,
}

enum StreamKind {
    RoundRobin {
        n: u64,
        next: u64,
    },
    Skewed {
        zipf: Zipf,
        rng: StdRng,
    },
    Churn {
        zipf: Zipf,
        rng: StdRng,
        active: Vec<u64>,
        next_id: u64,
        epoch_len: usize,
        until_churn: usize,
    },
}

impl ConnStream {
    /// Uniform round-robin over `n` connections (the PR-5 steady
    /// pattern).
    #[must_use]
    pub fn round_robin(n: u64) -> Self {
        assert!(n > 0);
        Self {
            kind: StreamKind::RoundRobin { n, next: 0 },
        }
    }

    /// Zipf(α)-skewed arrivals over connections `0..n` (α ≈ 0.99 is
    /// the classic web/KVS skew): connection 0 sends the bulk of the
    /// traffic, so whichever shard it hashes to becomes hot under
    /// static pinning.
    #[must_use]
    pub fn skewed(seed: u64, n: u64, alpha: f64) -> Self {
        assert!(n > 0);
        Self {
            kind: StreamKind::Skewed {
                zipf: Zipf::new(n as usize, alpha),
                rng: StdRng::seed_from_u64(seed),
            },
        }
    }

    /// Connection churn: Zipf-skewed arrivals over an active set of
    /// `n` connections whose hot half is retired and replaced with
    /// fresh (monotonically increasing) connection ids every
    /// `epoch_len` arrivals — the hot connection's *identity* rotates,
    /// so a static pinning that was balanced last epoch strands a
    /// different shard this epoch.
    #[must_use]
    pub fn churn(seed: u64, n: u64, epoch_len: usize) -> Self {
        assert!(n > 0 && epoch_len > 0);
        Self {
            kind: StreamKind::Churn {
                zipf: Zipf::new(n as usize, 0.99),
                rng: StdRng::seed_from_u64(seed),
                active: (0..n).collect(),
                next_id: n,
                epoch_len,
                until_churn: epoch_len,
            },
        }
    }

    /// The connection the next request arrives on. (Deliberately
    /// `next`-named like an iterator, but infinite and infallible —
    /// a stream, not an `Iterator`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        match &mut self.kind {
            StreamKind::RoundRobin { n, next } => {
                let c = *next;
                *next = (*next + 1) % *n;
                c
            }
            StreamKind::Skewed { zipf, rng } => zipf.sample(rng) as u64,
            StreamKind::Churn {
                zipf,
                rng,
                active,
                next_id,
                epoch_len,
                until_churn,
            } => {
                if *until_churn == 0 {
                    // Retire the hot half, admit fresh ids at the hot
                    // end of the Zipf ranking.
                    let retire = (active.len() / 2).max(1);
                    let kept: Vec<u64> = active.iter().skip(retire).copied().collect();
                    let fresh: Vec<u64> = (0..retire as u64).map(|i| *next_id + i).collect();
                    *next_id += retire as u64;
                    active.clear();
                    active.extend(fresh);
                    active.extend(kept);
                    *until_churn = *epoch_len;
                }
                *until_churn -= 1;
                active[zipf.sample(rng).min(active.len() - 1)]
            }
        }
    }
}

/// Pushes `n` encrypted requests onto a shard set: `req_of(i)` names
/// request `i`'s `(connection, enqueue timestamp)` — the request lands
/// on `fds[shard_for(conn, fds.len())]` and carries the explicit
/// stamp (in the serving core's timebase) so the reap can histogram
/// cycles of sojourn.
pub fn fill_socket_set(
    machine: &SgxMachine,
    ctx: &ThreadCtx,
    fds: &[Fd],
    session: &Session,
    n: usize,
    mut req_of: impl FnMut(usize) -> (u64, u64),
    mut next_plain: impl FnMut() -> Vec<u8>,
) {
    for i in 0..n {
        let (conn, stamp) = req_of(i);
        let fd = fds[shard_for(conn, fds.len())];
        machine
            .host
            .push_request_at(ctx, fd, &session.encrypt(&next_plain()), stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_load_respects_hot_range() {
        let mut g = ParamLoad::new(1, 1000, 8, Some(10));
        for _ in 0..50 {
            let p = g.next_plain();
            let count = u32::from_le_bytes(p[..4].try_into().unwrap()) as usize;
            assert_eq!(count, 8);
            for i in 0..count {
                let key = u64::from_le_bytes(p[4 + i * 16..12 + i * 16].try_into().unwrap());
                assert!((1..=10).contains(&key));
            }
        }
    }

    #[test]
    fn kvs_load_is_deterministic() {
        let a = KvsLoad::new(7, 100, 20, 64);
        let b = KvsLoad::new(7, 100, 20, 64);
        assert_eq!(a.key(5), b.key(5));
        assert_eq!(a.key(5).len(), 20);
        assert_eq!(a.set_plain(3), b.set_plain(3));
        assert_eq!(a.dataset_bytes(), 100 * 84);
    }

    #[test]
    fn kvs_get_targets_valid_items() {
        let mut g = KvsLoad::new(3, 50, 20, 64);
        for _ in 0..100 {
            let (i, p) = g.get_plain();
            assert!(i < 50);
            assert_eq!(p[0], 0, "GET opcode");
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 1000);
            counts[i] += 1;
        }
        // Item 0 dominates and the tail is thin.
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
        let head: u32 = counts[..100].iter().sum();
        let tail: u32 = counts[900..].iter().sum();
        assert!(head > tail * 10);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max / min.max(1) < 3, "min {min} max {max}");
    }

    #[test]
    fn shard_hash_is_stable_and_covers_every_shard() {
        for n_shards in 1..=4usize {
            let mut hit = vec![false; n_shards];
            for conn in 0..64u64 {
                let s = shard_for(conn, n_shards);
                assert!(s < n_shards);
                assert_eq!(s, shard_for(conn, n_shards), "hash must be stable");
                hit[s] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "64 connections cover {n_shards} shards"
            );
        }
    }

    #[test]
    fn shard_map_defaults_to_the_static_hash() {
        let map = ShardMap::new(4);
        for conn in 0..64u64 {
            assert_eq!(map.shard_of(conn), shard_for(conn, 4));
        }
    }

    #[test]
    fn repin_overrides_future_routing_only() {
        let map = ShardMap::new(4);
        let conn = (0..64u64).find(|&c| shard_for(c, 4) == 0).unwrap();
        let target = 3;
        map.repin(conn, target);
        assert_eq!(map.shard_of(conn), target);
        assert_eq!(map.route(conn), target);
        // Other connections keep their static placement.
        let other = (0..64u64).find(|&c| shard_for(c, 4) == 1).unwrap();
        assert_eq!(map.shard_of(other), 1);
    }

    #[test]
    fn weights_track_arrivals_and_decay() {
        let map = ShardMap::new(2);
        let hot = (0..64u64).find(|&c| shard_for(c, 2) == 0).unwrap();
        let cold = (0..64u64)
            .find(|&c| c != hot && shard_for(c, 2) == 0)
            .unwrap();
        for _ in 0..8 {
            map.route(hot);
        }
        map.route(cold);
        assert_eq!(map.shard_weights()[0], 9);
        assert_eq!(map.hottest_conns(0, 1), vec![(hot, 8)]);
        assert_eq!(map.hottest_conns(0, 4), vec![(hot, 8), (cold, 1)]);
        map.decay();
        assert_eq!(map.shard_weights()[0], 4, "8/2 + 1/2 (dropped)");
        // Re-pinning moves the weight to the new shard.
        map.repin(hot, 1);
        assert_eq!(map.shard_weights(), vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "repin target out of range")]
    fn repin_out_of_range_fails_fast() {
        ShardMap::new(2).repin(0, 2);
    }

    #[test]
    fn replica_ownership_starts_round_robin() {
        let map = ShardMap::with_replicas(5, 2);
        assert_eq!(map.n_replicas(), 2);
        assert_eq!(map.shards_of(0), vec![0, 2, 4]);
        assert_eq!(map.shards_of(1), vec![1, 3]);
        for s in 0..5 {
            assert_eq!(map.replica_of(s), s % 2);
        }
        // Single-replica maps put everything on replica 0.
        let solo = ShardMap::new(3);
        assert_eq!(solo.n_replicas(), 1);
        assert_eq!(solo.shards_of(0), vec![0, 1, 2]);
    }

    #[test]
    fn reassign_moves_ownership_at_the_fence() {
        let map = ShardMap::with_replicas(4, 2);
        map.reassign(1, 0);
        map.reassign(3, 0);
        assert_eq!(map.shards_of(0), vec![0, 1, 2, 3]);
        assert!(map.shards_of(1).is_empty());
        // Routing follows the new owner; shard placement is unchanged.
        for conn in 0..16u64 {
            let (s, r) = map.route_replica(conn);
            assert_eq!(s, shard_for(conn, 4));
            assert_eq!(r, 0);
        }
    }

    #[test]
    #[should_panic(expected = "reassign target out of range")]
    fn reassign_out_of_range_fails_fast() {
        ShardMap::with_replicas(4, 2).reassign(0, 2);
    }

    #[test]
    fn chaos_plan_fires_each_event_once_in_order() {
        let mut plan = ChaosPlan::kill_respawn(1, 100, 200);
        assert!(plan.take_due(99).is_empty());
        assert_eq!(plan.take_due(150), vec![ChaosAction::Kill(1)]);
        assert!(plan.take_due(150).is_empty(), "events fire exactly once");
        assert!(!plan.exhausted());
        assert_eq!(plan.take_due(500), vec![ChaosAction::Respawn(1)]);
        assert!(plan.exhausted());
    }

    #[test]
    #[should_panic(expected = "die before it rejoins")]
    fn chaos_plan_rejects_respawn_before_kill() {
        let _ = ChaosPlan::kill_respawn(0, 200, 100);
    }

    #[test]
    fn round_robin_stream_cycles() {
        let mut s = ConnStream::round_robin(3);
        assert_eq!(
            (0..7).map(|_| s.next()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn skewed_stream_concentrates_on_one_connection() {
        let mut s = ConnStream::skewed(11, 64, 0.99);
        let mut counts = vec![0u32; 64];
        for _ in 0..4_000 {
            counts[s.next() as usize] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        assert!(counts[0] == hottest, "conn 0 is the Zipf head");
        assert!(
            hottest as f64 > 4_000.0 * 0.10,
            "head conn must dominate: {hottest}"
        );
    }

    #[test]
    fn churn_stream_rotates_the_hot_connection() {
        let epoch = 256;
        let mut s = ConnStream::churn(5, 16, epoch);
        let hot_of = |s: &mut ConnStream| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..epoch {
                *counts.entry(s.next()).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(_, n)| n).unwrap().0
        };
        let h1 = hot_of(&mut s);
        let h2 = hot_of(&mut s);
        let h3 = hot_of(&mut s);
        assert!(h1 < 16, "first epoch draws from the initial set");
        assert!(h2 >= 16 && h3 > h2, "fresh ids take over each epoch");
    }

    #[test]
    fn face_load_builds_valid_requests() {
        let mut g = FaceLoad::new(1, 4, 64);
        let p = g.next_plain();
        let id = u64::from_le_bytes(p[..8].try_into().unwrap());
        assert!((1..=4).contains(&id));
        assert_eq!(p.len(), 12 + 64 * 64);
    }
}
