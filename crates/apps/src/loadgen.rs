//! Load generators for the evaluation workloads (paper §6).
//!
//! These play the role of the paper's client machine: memaslap for
//! memcached, the custom update generator for the parameter server and
//! the FERET-driven request stream for face verification. All are
//! seeded for reproducibility and produce encrypted wire messages.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use eleos_enclave::host::Fd;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

use crate::face;
use crate::kvs;
use crate::param_server::build_update_request;
use crate::wire::Wire;

/// A Zipf(α) sampler over `0..n` by inverse-CDF table lookup —
/// key-value workloads are rarely uniform in production, and memaslap
/// supports skewed key distributions.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table for `n` items with exponent
    /// `alpha` (0 = uniform; ~0.99 is the classic web/KVS skew).
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws an index in `0..n` (0 is the hottest item).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Parameter-server update stream (the §2 workload).
pub struct ParamLoad {
    rng: StdRng,
    /// Total key universe (server data size / 16 bytes).
    pub n_keys: u64,
    /// Keys updated per request (the x-axis of Figs 2 and 6).
    pub keys_per_req: usize,
    /// Restrict updates to the first `hot` keys (Fig 2a's 8 MB hot
    /// set), if set.
    pub hot: Option<u64>,
}

impl ParamLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_keys: u64, keys_per_req: usize, hot: Option<u64>) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_keys,
            keys_per_req,
            hot,
        }
    }

    /// Next request plaintext.
    pub fn next_plain(&mut self) -> Vec<u8> {
        let range = self.hot.unwrap_or(self.n_keys).min(self.n_keys);
        let updates: Vec<(u64, u64)> = (0..self.keys_per_req)
            .map(|_| (self.rng.random_range(1..=range), 1u64))
            .collect();
        build_update_request(&updates)
    }
}

/// memaslap-style key-value load (paper §6.2.2): a fill phase that
/// SETs every item, then uniform-random GETs over the full item set.
pub struct KvsLoad {
    rng: StdRng,
    /// Number of items.
    pub n_items: u64,
    /// Key size in bytes (paper: 20 B).
    pub key_len: usize,
    /// Value size in bytes (paper: 1 KiB / 4 KiB).
    pub value_len: usize,
}

impl KvsLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_items: u64, key_len: usize, value_len: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_items,
            key_len,
            value_len,
        }
    }

    /// The key for item `i`, padded to `key_len`.
    #[must_use]
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("key-{i:012}").into_bytes();
        k.resize(self.key_len, b'x');
        k
    }

    /// Deterministic value contents for item `i`.
    #[must_use]
    pub fn value(&self, i: u64) -> Vec<u8> {
        let b = (i % 251) as u8;
        vec![b; self.value_len]
    }

    /// SET plaintext for item `i` (fill phase).
    #[must_use]
    pub fn set_plain(&self, i: u64) -> Vec<u8> {
        kvs::build_set(&self.key(i), &self.value(i))
    }

    /// Next random GET plaintext, returning `(item, plaintext)`.
    pub fn get_plain(&mut self) -> (u64, Vec<u8>) {
        let i = self.rng.random_range(0..self.n_items);
        (i, kvs::build_get(&self.key(i)))
    }

    /// Next GET drawn from a [`Zipf`] distribution (hot keys first).
    pub fn get_plain_zipf(&mut self, zipf: &Zipf) -> (u64, Vec<u8>) {
        let i = zipf.sample(&mut self.rng) as u64;
        (i, kvs::build_get(&self.key(i)))
    }

    /// Total data-set bytes (what "500 MB of data" means in §6.2.2).
    #[must_use]
    pub fn dataset_bytes(&self) -> u64 {
        self.n_items * (self.key_len + self.value_len) as u64
    }
}

/// Face-verification request stream: random enrolled identities,
/// genuine captures.
pub struct FaceLoad {
    rng: StdRng,
    /// Enrolled identities are `1..=n_ids`.
    pub n_ids: u64,
    /// Image side.
    pub side: usize,
    capture: u64,
}

impl FaceLoad {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64, n_ids: u64, side: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n_ids,
            side,
            capture: 0,
        }
    }

    /// Next verification request plaintext (genuine attempt).
    pub fn next_plain(&mut self) -> Vec<u8> {
        let id = self.rng.random_range(1..=self.n_ids);
        self.capture += 1;
        let img = face::synth_capture(id, self.side, self.capture);
        face::build_verify_request(id, self.side, &img)
    }
}

/// Pushes `n` encrypted requests from `next_plain` onto `fd`'s queue.
pub fn fill_socket(
    machine: &SgxMachine,
    ctx: &ThreadCtx,
    fd: Fd,
    wire: &Wire,
    n: usize,
    mut next_plain: impl FnMut() -> Vec<u8>,
) {
    for _ in 0..n {
        machine
            .host
            .push_request(ctx, fd, &wire.encrypt(&next_plain()));
    }
}

/// Hashes a client connection id onto one shard of an `n_shards`-wide
/// socket set — the load-generator half of SO_REUSEPORT: every message
/// of a connection lands on the same shard, so per-shard FIFO order is
/// per-connection order. Fibonacci (multiplicative) hashing keeps
/// sequential connection ids well spread.
#[must_use]
pub fn shard_for(conn: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "a socket set needs at least one shard");
    (conn.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % n_shards
}

/// Pushes `n` encrypted requests onto a shard set: `req_of(i)` names
/// request `i`'s `(connection, enqueue timestamp)` — the request lands
/// on `fds[shard_for(conn, fds.len())]` and carries the explicit
/// stamp (in the serving core's timebase) so the reap can histogram
/// cycles of sojourn.
pub fn fill_socket_set(
    machine: &SgxMachine,
    ctx: &ThreadCtx,
    fds: &[Fd],
    wire: &Wire,
    n: usize,
    mut req_of: impl FnMut(usize) -> (u64, u64),
    mut next_plain: impl FnMut() -> Vec<u8>,
) {
    for i in 0..n {
        let (conn, stamp) = req_of(i);
        let fd = fds[shard_for(conn, fds.len())];
        machine
            .host
            .push_request_at(ctx, fd, &wire.encrypt(&next_plain()), stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_load_respects_hot_range() {
        let mut g = ParamLoad::new(1, 1000, 8, Some(10));
        for _ in 0..50 {
            let p = g.next_plain();
            let count = u32::from_le_bytes(p[..4].try_into().unwrap()) as usize;
            assert_eq!(count, 8);
            for i in 0..count {
                let key = u64::from_le_bytes(p[4 + i * 16..12 + i * 16].try_into().unwrap());
                assert!((1..=10).contains(&key));
            }
        }
    }

    #[test]
    fn kvs_load_is_deterministic() {
        let a = KvsLoad::new(7, 100, 20, 64);
        let b = KvsLoad::new(7, 100, 20, 64);
        assert_eq!(a.key(5), b.key(5));
        assert_eq!(a.key(5).len(), 20);
        assert_eq!(a.set_plain(3), b.set_plain(3));
        assert_eq!(a.dataset_bytes(), 100 * 84);
    }

    #[test]
    fn kvs_get_targets_valid_items() {
        let mut g = KvsLoad::new(3, 50, 20, 64);
        for _ in 0..100 {
            let (i, p) = g.get_plain();
            assert!(i < 50);
            assert_eq!(p[0], 0, "GET opcode");
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 1000);
            counts[i] += 1;
        }
        // Item 0 dominates and the tail is thin.
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
        let head: u32 = counts[..100].iter().sum();
        let tail: u32 = counts[900..].iter().sum();
        assert!(head > tail * 10);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max / min.max(1) < 3, "min {min} max {max}");
    }

    #[test]
    fn shard_hash_is_stable_and_covers_every_shard() {
        for n_shards in 1..=4usize {
            let mut hit = vec![false; n_shards];
            for conn in 0..64u64 {
                let s = shard_for(conn, n_shards);
                assert!(s < n_shards);
                assert_eq!(s, shard_for(conn, n_shards), "hash must be stable");
                hit[s] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "64 connections cover {n_shards} shards"
            );
        }
    }

    #[test]
    fn face_load_builds_valid_requests() {
        let mut g = FaceLoad::new(1, 4, 64);
        let p = g.next_plain();
        let id = u64::from_le_bytes(p[..8].try_into().unwrap());
        assert!((1..=4).contains(&id));
        assert_eq!(p.len(), 12 + 64 * 64);
    }
}
