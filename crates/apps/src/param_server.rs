//! The parameter server from the paper's motivation study (§2).
//!
//! "Parameter servers are commonly used in distributed machine learning
//! systems to store shared model parameters … Each worker issues
//! in-place updates." The server is a hash table of 8-byte keys to
//! 8-byte values living in a [`DataSpace`]; clients send encrypted
//! batches of `(key, delta)` updates.
//!
//! Two table layouts are provided because Fig 2b contrasts them: **open
//! addressing** (linear probing — no pointer chasing, insensitive to
//! TLB flushes) and **chaining** (a pointer dereference per node —
//! every enclave exit's TLB flush costs a page walk per hop).

use eleos_enclave::thread::ThreadCtx;

use crate::io::ServerIo;
use crate::space::DataSpace;

/// Hash-table layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Linear probing in a flat slot array.
    OpenAddressing,
    /// Bucket heads + singly linked nodes.
    Chaining,
}

const SLOT_BYTES: u64 = 16; // key, value
const NODE_BYTES: usize = 24; // key, value, next

/// Cost of hashing + request-parsing arithmetic per key, charged as
/// pure compute.
const HASH_CYCLES: u64 = 30;

/// SplitMix64 — the table hash.
#[must_use]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The parameter server.
pub struct ParamServer {
    space: DataSpace,
    kind: TableKind,
    buckets: u64,
    /// Open addressing: the slot array. Chaining: the head array.
    table: u64,
    entries: u64,
}

impl ParamServer {
    /// Creates a server sized for `capacity` entries (the table is
    /// allocated at 2x capacity for open addressing, like the paper's
    /// fixed-size KVS).
    #[must_use]
    pub fn new(space: DataSpace, kind: TableKind, capacity: u64) -> Self {
        let buckets = (capacity * 2).next_power_of_two();
        let table = match kind {
            TableKind::OpenAddressing => space.alloc((buckets * SLOT_BYTES) as usize),
            TableKind::Chaining => space.alloc((buckets * 8) as usize),
        };
        Self {
            space,
            kind,
            buckets,
            table,
            entries: 0,
        }
    }

    /// The number of live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate bytes of parameter data (what "server data size"
    /// means in Fig 1).
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        match self.kind {
            TableKind::OpenAddressing => self.buckets * SLOT_BYTES,
            TableKind::Chaining => self.buckets * 8 + self.entries * NODE_BYTES as u64,
        }
    }

    /// Zeroes the table (required before first use for open
    /// addressing, where key 0 marks an empty slot).
    pub fn init(&self, ctx: &mut ThreadCtx) {
        let len = match self.kind {
            TableKind::OpenAddressing => self.buckets * SLOT_BYTES,
            TableKind::Chaining => self.buckets * 8,
        };
        let zeros = vec![0u8; 4096];
        let mut off = 0u64;
        while off < len {
            let n = ((len - off) as usize).min(4096);
            self.space.write(ctx, self.table + off, &zeros[..n]);
            off += n as u64;
        }
    }

    /// Inserts or updates `key` by adding `delta` (keys must be
    /// nonzero). Returns the new value.
    pub fn update(&mut self, ctx: &mut ThreadCtx, key: u64, delta: u64) -> u64 {
        assert_ne!(key, 0, "key 0 is the empty-slot marker");
        ctx.compute(HASH_CYCLES);
        let h = hash64(key) & (self.buckets - 1);
        match self.kind {
            TableKind::OpenAddressing => {
                let mut slot = h;
                loop {
                    let addr = self.table + slot * SLOT_BYTES;
                    let k = self.space.read_u64(ctx, addr);
                    if k == key {
                        let v = self.space.read_u64(ctx, addr + 8).wrapping_add(delta);
                        self.space.write_u64(ctx, addr + 8, v);
                        return v;
                    }
                    if k == 0 {
                        assert!(
                            self.entries * 2 < self.buckets,
                            "parameter table over capacity"
                        );
                        self.space.write_u64(ctx, addr, key);
                        self.space.write_u64(ctx, addr + 8, delta);
                        self.entries += 1;
                        return delta;
                    }
                    slot = (slot + 1) & (self.buckets - 1);
                }
            }
            TableKind::Chaining => {
                let head_addr = self.table + h * 8;
                let mut node = self.space.read_u64(ctx, head_addr);
                while node != 0 {
                    let k = self.space.read_u64(ctx, node);
                    if k == key {
                        let v = self.space.read_u64(ctx, node + 8).wrapping_add(delta);
                        self.space.write_u64(ctx, node + 8, v);
                        return v;
                    }
                    node = self.space.read_u64(ctx, node + 16);
                }
                // Insert at head. Node addresses are nonzero because
                // the head array occupies offset 0 of the space... not
                // guaranteed in general, so bias by +1 page via a
                // dedicated guard allocation at construction if needed.
                let new = self.space.alloc(NODE_BYTES);
                assert_ne!(new, 0, "node at null address");
                self.space.write_u64(ctx, new, key);
                self.space.write_u64(ctx, new + 8, delta);
                let old_head = self.space.read_u64(ctx, head_addr);
                self.space.write_u64(ctx, new + 16, old_head);
                self.space.write_u64(ctx, head_addr, new);
                self.entries += 1;
                delta
            }
        }
    }

    /// Reads `key`'s value.
    #[must_use]
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.compute(HASH_CYCLES);
        let h = hash64(key) & (self.buckets - 1);
        match self.kind {
            TableKind::OpenAddressing => {
                let mut slot = h;
                loop {
                    let addr = self.table + slot * SLOT_BYTES;
                    let k = self.space.read_u64(ctx, addr);
                    if k == key {
                        return Some(self.space.read_u64(ctx, addr + 8));
                    }
                    if k == 0 {
                        return None;
                    }
                    slot = (slot + 1) & (self.buckets - 1);
                }
            }
            TableKind::Chaining => {
                let mut node = self.space.read_u64(ctx, self.table + h * 8);
                while node != 0 {
                    if self.space.read_u64(ctx, node) == key {
                        return Some(self.space.read_u64(ctx, node + 8));
                    }
                    node = self.space.read_u64(ctx, node + 16);
                }
                None
            }
        }
    }

    /// Populates keys `1..=n` with value = key.
    pub fn populate(&mut self, ctx: &mut ThreadCtx, n: u64) {
        for key in 1..=n {
            self.update(ctx, key, key);
        }
    }

    /// Bulk population for open addressing: computes the final table
    /// image natively and streams it in sequentially — the moral
    /// equivalent of loading a snapshot, avoiding one random page
    /// fault per inserted key during experiment setup.
    ///
    /// # Panics
    /// Panics for chaining tables (whose nodes must be heap-allocated
    /// one by one) or when the table would exceed half full.
    pub fn populate_bulk(&mut self, ctx: &mut ThreadCtx, n: u64) {
        assert_eq!(
            self.kind,
            TableKind::OpenAddressing,
            "bulk load is open-addressing only"
        );
        assert!(n * 2 <= self.buckets, "parameter table over capacity");
        assert!(self.entries == 0, "bulk load into a fresh table");
        let mut shadow = vec![0u8; (self.buckets * SLOT_BYTES) as usize];
        for key in 1..=n {
            let mut slot = hash64(key) & (self.buckets - 1);
            loop {
                let off = (slot * SLOT_BYTES) as usize;
                let k = u64::from_le_bytes(shadow[off..off + 8].try_into().expect("slot"));
                if k == 0 {
                    shadow[off..off + 8].copy_from_slice(&key.to_le_bytes());
                    shadow[off + 8..off + 16].copy_from_slice(&key.to_le_bytes());
                    break;
                }
                slot = (slot + 1) & (self.buckets - 1);
            }
        }
        for (i, chunk) in shadow.chunks(64 << 10).enumerate() {
            self.space
                .write(ctx, self.table + (i * (64 << 10)) as u64, chunk);
        }
        self.entries = n;
    }

    /// Handles one client request from `io`. Returns the cycles spent
    /// in the processing loop (the paper's "in-enclave execution
    /// time", which excludes the direct costs of exits and system
    /// calls — Figs 2 and 6), or `None` when the socket is drained.
    ///
    /// Update request: `[0u8][count u32][(key u64, delta u64) × count]`
    /// → ack `[count u32]`. Read request ("retrieves their values",
    /// §2): `[1u8][count u32][key u64 × count]` → `[value u64 × count]`
    /// (missing keys read as 0).
    ///
    /// The legacy header-less update form (`[count u32][pairs…]`) is
    /// also accepted.
    pub fn handle_request(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> Option<u64> {
        let plain = io.recv_msg(ctx)?;
        let (resp, inner) = self.process(ctx, &plain);
        io.send_msg(ctx, &resp);
        Some(inner)
    }

    /// Handles up to `io.cfg.batch` requests as one pipelined batch:
    /// all receives are posted together, the reap decrypted in one
    /// batched crypto pass, processed back-to-back, and the responses
    /// batch-encrypted and sent together — on the RPC path each I/O
    /// stage is a single amortized ring submission instead of
    /// per-message handoffs. Returns `(requests handled, total
    /// in-enclave processing cycles)`; handles zero requests when the
    /// socket is drained.
    pub fn handle_batch(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> (usize, u64) {
        let requests = io.recv_batch(ctx);
        let mut inner_total = 0;
        let mut replies = Vec::with_capacity(requests.len());
        for plain in &requests {
            let (resp, inner) = self.process(ctx, plain);
            inner_total += inner;
            replies.push(resp);
        }
        io.send_batch(ctx, &replies);
        (requests.len(), inner_total)
    }

    /// Executes one decrypted request, returning the response
    /// plaintext and the cycles spent in the processing loop.
    fn process(&mut self, ctx: &mut ThreadCtx, plain: &[u8]) -> (Vec<u8>, u64) {
        // Disambiguate: opcode-framed requests are 1 (mod 16 payload);
        // the legacy update form is exactly 4 + 16*count bytes.
        let (op, body) = if plain.len() % 16 == 4 {
            (0u8, plain)
        } else {
            (plain[0], &plain[1..])
        };
        let count = u32::from_le_bytes(body[..4].try_into().expect("short request")) as usize;
        match op {
            0 => {
                assert_eq!(body.len(), 4 + count * 16, "malformed update request");
                let inner_start = ctx.now();
                for i in 0..count {
                    let off = 4 + i * 16;
                    let key = u64::from_le_bytes(body[off..off + 8].try_into().expect("len ok"));
                    let delta =
                        u64::from_le_bytes(body[off + 8..off + 16].try_into().expect("len ok"));
                    self.update(ctx, key, delta);
                }
                let inner = ctx.now() - inner_start;
                ((count as u32).to_le_bytes().to_vec(), inner)
            }
            1 => {
                assert_eq!(body.len(), 4 + count * 8, "malformed read request");
                let inner_start = ctx.now();
                let mut resp = Vec::with_capacity(count * 8);
                for i in 0..count {
                    let off = 4 + i * 8;
                    let key = u64::from_le_bytes(body[off..off + 8].try_into().expect("len ok"));
                    let v = self.get(ctx, key).unwrap_or(0);
                    resp.extend_from_slice(&v.to_le_bytes());
                }
                let inner = ctx.now() - inner_start;
                (resp, inner)
            }
            other => panic!("unknown parameter-server opcode {other}"),
        }
    }
}

/// Builds a request plaintext of `keys_and_deltas`.
#[must_use]
pub fn build_update_request(keys_and_deltas: &[(u64, u64)]) -> Vec<u8> {
    let mut plain = Vec::with_capacity(4 + keys_and_deltas.len() * 16);
    plain.extend_from_slice(&(keys_and_deltas.len() as u32).to_le_bytes());
    for &(k, d) in keys_and_deltas {
        plain.extend_from_slice(&k.to_le_bytes());
        plain.extend_from_slice(&d.to_le_bytes());
    }
    plain
}

/// Builds a value-read request plaintext.
#[must_use]
pub fn build_read_request(keys: &[u64]) -> Vec<u8> {
    let mut plain = Vec::with_capacity(5 + keys.len() * 8);
    plain.push(1u8);
    plain.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for k in keys {
        plain.extend_from_slice(&k.to_le_bytes());
    }
    plain
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn harness() -> (Arc<SgxMachine>, DataSpace, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 8 << 20);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (Arc::clone(&m), DataSpace::Enclave(e), t)
    }

    #[test]
    fn open_addressing_update_get() {
        let (_m, space, mut t) = harness();
        let mut ps = ParamServer::new(space, TableKind::OpenAddressing, 1000);
        ps.init(&mut t);
        assert!(ps.is_empty());
        assert_eq!(ps.update(&mut t, 42, 10), 10);
        assert_eq!(ps.update(&mut t, 42, 5), 15);
        assert_eq!(ps.get(&mut t, 42), Some(15));
        assert_eq!(ps.get(&mut t, 43), None);
        assert_eq!(ps.len(), 1);
        t.exit();
    }

    #[test]
    fn chaining_update_get() {
        let (_m, space, mut t) = harness();
        let mut ps = ParamServer::new(space, TableKind::Chaining, 1000);
        ps.init(&mut t);
        for k in 1..=500u64 {
            ps.update(&mut t, k, k * 2);
        }
        for k in 1..=500u64 {
            assert_eq!(ps.get(&mut t, k), Some(k * 2), "key {k}");
        }
        assert_eq!(ps.get(&mut t, 501), None);
        t.exit();
    }

    #[test]
    fn collisions_resolved_in_both_layouts() {
        let (_m, space, mut t) = harness();
        for kind in [TableKind::OpenAddressing, TableKind::Chaining] {
            // Tiny table: plenty of collisions.
            let mut ps = ParamServer::new(space.clone(), kind, 16);
            ps.init(&mut t);
            for k in 1..=10u64 {
                ps.update(&mut t, k, k);
            }
            for k in 1..=10u64 {
                assert_eq!(ps.get(&mut t, k), Some(k), "{kind:?} key {k}");
            }
        }
        t.exit();
    }

    #[test]
    fn populate_sets_identity_values() {
        let (_m, space, mut t) = harness();
        let mut ps = ParamServer::new(space, TableKind::OpenAddressing, 256);
        ps.init(&mut t);
        ps.populate(&mut t, 100);
        assert_eq!(ps.len(), 100);
        assert_eq!(ps.get(&mut t, 77), Some(77));
        t.exit();
    }

    #[test]
    fn request_roundtrip() {
        let plain = build_update_request(&[(1, 2), (3, 4)]);
        assert_eq!(plain.len(), 4 + 32);
        assert_eq!(u32::from_le_bytes(plain[..4].try_into().unwrap()), 2);
    }

    #[test]
    fn update_and_read_through_the_wire() {
        use crate::io::{IoPath, ServerIoConfig};
        use crate::wire::Session;
        use std::sync::Arc;
        let (_m2, space, mut t) = harness();
        let m = Arc::clone(&t.machine);
        let mut ps = ParamServer::new(space, TableKind::OpenAddressing, 1000);
        ps.init(&mut t);
        let wire = Arc::new(Session::established([4u8; 16]));
        let fd = m.host.socket(&t, 64 << 10);
        let io = ServerIoConfig::with_buf_len(32 << 10).build(
            &t,
            &[fd],
            IoPath::Ocall,
            Arc::clone(&wire),
        );

        // Two updates then a read of three keys (one missing).
        m.host.push_request(
            &t,
            fd,
            &wire.encrypt(&build_update_request(&[(10, 5), (20, 7)])),
        );
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_update_request(&[(10, 1)])));
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_read_request(&[10, 20, 30])));
        assert!(ps.handle_request(&mut t, &io).is_some());
        assert!(ps.handle_request(&mut t, &io).is_some());
        assert!(ps.handle_request(&mut t, &io).is_some());
        let _ = m.host.pop_response(fd);
        let _ = m.host.pop_response(fd);
        let resp = wire.decrypt(&m.host.pop_response(fd).expect("read response"));
        assert_eq!(resp.len(), 24);
        let v = |i: usize| u64::from_le_bytes(resp[i * 8..(i + 1) * 8].try_into().unwrap());
        assert_eq!(v(0), 6);
        assert_eq!(v(1), 7);
        assert_eq!(v(2), 0, "missing key reads as zero");
        t.exit();
    }
}
