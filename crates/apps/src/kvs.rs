//! A memcached-style key-value store (paper §5.1).
//!
//! The port mirrors the paper's 75-line memcached modification: the
//! original slab allocator keeps managing the pool, but the pool's
//! *location* is a [`DataSpace`]; item **metadata** (hash-chain and LRU
//! pointers, slab class) is security-insensitive and lives in a clear
//! metadata space, while the **keys, values and their sizes** live in
//! the secure data space (SUVM in the Eleos configuration).
//!
//! The store itself is now a thin protocol/snapshot front-end over a
//! pluggable [`StorageEngine`] (see [`crate::storage`]): the default
//! [`EngineConfig::Slab`] engine is the seed's slab/LRU store
//! (optionally with the fence-time slab rebalancer), and
//! [`EngineConfig::Segment`] swaps in the TTL-bucketed append-only
//! segment store. Engine maintenance runs only in [`Kvs::fence`],
//! which the batch handlers invoke at sub-batch boundaries.
//!
//! The *version* is a caller-managed write stamp (the fleet tier sets
//! it to its fence-epoch interval): every `set` stamps the item, and
//! [`Kvs::restore`] merges last-writer-wins on it, so a snapshot
//! re-imported after bouncing through another replica can never clobber
//! a fresher value (see `fleet_io`'s fence protocol).

use eleos_core::{Snapshot, SnapshotBuilder};
use eleos_crypto::Sealer;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;

use crate::io::ServerIo;
use crate::space::DataSpace;
use crate::storage::{build_engine, now_secs, EngineConfig, StorageEngine};

/// Per-operation parsing/hashing compute, in cycles.
const OP_CYCLES: u64 = 120;

/// Name of the item-log section in a portable [`Snapshot`].
const KVS_SECTION: &str = "kvs-items";

/// Name of the engine-metadata section in a portable [`Snapshot`]:
/// `label_len u8 || label || item_count u64 || engine blob`. Carried so
/// a restore side can cross-check the item log against the sealing
/// engine's view (and log which engine produced it).
const STORAGE_META_SECTION: &str = "storage-meta";

/// The key-value store: protocol parsing, write-stamping and
/// snapshot/restore over a pluggable [`StorageEngine`].
pub struct Kvs {
    engine: Box<dyn StorageEngine>,
    version: u64,
}

impl Kvs {
    /// Creates a store with a `mem_limit`-byte value pool in
    /// `data_space` and chains/heads in `meta_space`, running the
    /// default slab engine (no rebalancer) — byte- and cycle-identical
    /// to the seed's store.
    #[must_use]
    pub fn new(meta_space: DataSpace, data_space: DataSpace, mem_limit: u64, buckets: u64) -> Self {
        Self::with_engine(
            meta_space,
            data_space,
            mem_limit,
            buckets,
            &EngineConfig::default(),
        )
    }

    /// Creates a store running the configured engine.
    #[must_use]
    pub fn with_engine(
        meta_space: DataSpace,
        data_space: DataSpace,
        mem_limit: u64,
        buckets: u64,
        cfg: &EngineConfig,
    ) -> Self {
        Self {
            engine: build_engine(cfg, meta_space, data_space, mem_limit, buckets),
            version: 0,
        }
    }

    /// The engine's short label (`"slab"`, `"slab-rebal"`,
    /// `"segment"`).
    #[must_use]
    pub fn engine_label(&self) -> &'static str {
        self.engine.label()
    }

    /// The write stamp every subsequent `set` records on its item.
    #[must_use]
    pub fn write_version(&self) -> u64 {
        self.version
    }

    /// Sets the write stamp. The fleet tier advances this to its fence
    /// epoch after every fence, which is what makes the versioned
    /// restore merge ([`Self::restore`]) last-writer-wins across
    /// arbitrary kill/respawn schedules: two stores only ever hold the
    /// same stamp for a key when they hold the same value.
    pub fn set_write_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Zeroes the bucket heads.
    pub fn init(&self, ctx: &mut ThreadCtx) {
        self.engine.init(ctx);
    }

    /// Number of live items.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.engine.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.engine.len() == 0
    }

    /// Items evicted under memory pressure so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.engine.evictions()
    }

    /// Items dropped because their TTL deadline passed.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.engine.expired()
    }

    /// Bytes of secure pool acquired from the data space.
    #[must_use]
    pub fn pool_bytes(&self) -> u64 {
        self.engine.pool_bytes()
    }

    /// Inserts or replaces `key` with `value` (no expiry).
    pub fn set(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8]) {
        self.set_with_ttl(ctx, key, value, 0);
    }

    /// Inserts or replaces `key` with `value`, expiring after
    /// `ttl_secs` of simulated time (0 = never) — memcached's
    /// `exptime` semantics with lazy expiration.
    pub fn set_with_ttl(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8], ttl_secs: u32) {
        ctx.compute(OP_CYCLES);
        let expiry = if ttl_secs == 0 {
            0
        } else {
            now_secs(ctx).saturating_add(ttl_secs)
        };
        self.engine.set(ctx, key, value, expiry, self.version);
    }

    /// Looks `key` up. Expired items are lazily deleted and read as
    /// misses (memcached semantics).
    pub fn get(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        ctx.compute(OP_CYCLES);
        self.engine.get(ctx, key)
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> bool {
        ctx.compute(OP_CYCLES);
        self.engine.delete(ctx, key)
    }

    /// Sub-batch fence: the only point where engine maintenance (slab
    /// rebalancing, proactive segment expiry, gauge publishing) runs.
    /// The batch handlers call it after every non-empty batch; serving
    /// loops that bypass them must call it between batches themselves.
    pub fn fence(&mut self, ctx: &mut ThreadCtx) {
        self.engine.fence(ctx);
    }

    /// Switches the engine between fence-synchronous maintenance (the
    /// default) and background mode, where fences only publish
    /// counters and the byte-work runs in [`Self::maintenance_tick`]
    /// off the serving path.
    pub fn set_background(&mut self, on: bool) {
        self.engine.set_background(on);
    }

    /// One engine background-maintenance pass, run by the maintenance
    /// plane with a context on its own core. Returns whether any work
    /// ran.
    pub fn maintenance_tick(&mut self, ctx: &mut ThreadCtx) -> bool {
        self.engine.maintenance_tick(ctx)
    }

    /// Visits every live, unexpired item (index order) with
    /// `(key, value)`.
    pub fn for_each_item(&self, ctx: &mut ThreadCtx, mut f: impl FnMut(&[u8], &[u8])) {
        self.engine
            .for_each(ctx, &mut |key, value, _version, _expiry| f(key, value));
    }

    /// Encodes every live, unexpired item as the snapshot plaintext:
    /// `count u64 || (klen u32, vlen u32, version u64, expiry u32,
    /// key, value)*` in index order. Shared by both snapshot flavors.
    /// Absolute expiry deadlines travel with the items, so a restore
    /// preserves each item's remaining TTL.
    fn encode_items(&self, ctx: &mut ThreadCtx) -> Vec<u8> {
        let mut body = Vec::new();
        let mut count = 0u64;
        self.engine
            .for_each(ctx, &mut |key, value, version, expiry| {
                body.extend_from_slice(&(key.len() as u32).to_le_bytes());
                body.extend_from_slice(&(value.len() as u32).to_le_bytes());
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&expiry.to_le_bytes());
                body.extend_from_slice(key);
                body.extend_from_slice(value);
                count += 1;
            });
        let mut plain = Vec::with_capacity(8 + body.len());
        plain.extend_from_slice(&count.to_le_bytes());
        plain.extend_from_slice(&body);
        plain
    }

    /// Merges an item log produced by [`Self::encode_items`]:
    /// last-writer-wins on the per-item write stamp. An absent key is
    /// inserted (keeping the log's stamp); a present key is overwritten
    /// only when the log's stamp is strictly newer — a store only ever
    /// carries a *stale* copy of a key it no longer serves at a stamp
    /// strictly below the current owner's, so equality means equal
    /// bytes and skipping is safe. Items whose expiry deadline already
    /// passed are dropped on the floor. Returns the number applied.
    fn decode_items(&mut self, ctx: &mut ThreadCtx, plain: &[u8]) -> u64 {
        let count = u64::from_le_bytes(plain[..8].try_into().expect("count"));
        let mut off = 8usize;
        let mut applied = 0u64;
        let now = now_secs(ctx);
        for _ in 0..count {
            let klen = u32::from_le_bytes(plain[off..off + 4].try_into().expect("klen")) as usize;
            let vlen =
                u32::from_le_bytes(plain[off + 4..off + 8].try_into().expect("vlen")) as usize;
            let version = u64::from_le_bytes(plain[off + 8..off + 16].try_into().expect("version"));
            let expiry = u32::from_le_bytes(plain[off + 16..off + 20].try_into().expect("expiry"));
            off += 20;
            let key = plain[off..off + klen].to_vec();
            off += klen;
            let value = plain[off..off + vlen].to_vec();
            off += vlen;
            if expiry != 0 && now >= expiry {
                continue;
            }
            if let Some(stored) = self.engine.version_of(ctx, &key) {
                if stored >= version {
                    continue;
                }
            }
            ctx.compute(OP_CYCLES);
            self.engine.set(ctx, &key, &value, expiry, version);
            applied += 1;
        }
        applied
    }

    /// Captures every live item as the `"kvs-items"` section of a
    /// portable [`Snapshot`] (plus a `"storage-meta"` section carrying
    /// the engine's layout fingerprint), sealed through the shared
    /// [`Sealer`] seam. `domain`/`epoch` scope the nonces (see
    /// [`SnapshotBuilder::new`]); the fleet passes the sealing
    /// enclave's id and its failover epoch.
    ///
    /// Callers whose data space is SUVM-backed should
    /// [`quiesce`](eleos_core::Suvm::quiesce) the instance first —
    /// this runs at a fence, and a fence means dirty pages are sealed
    /// home.
    #[must_use]
    pub fn snapshot(
        &self,
        ctx: &mut ThreadCtx,
        sealer: &dyn Sealer,
        domain: u32,
        epoch: u64,
    ) -> Snapshot {
        let items = self.encode_items(ctx);
        let count = u64::from_le_bytes(items[..8].try_into().expect("count"));
        let label = self.engine.label().as_bytes();
        let mut meta = Vec::with_capacity(1 + label.len() + 8);
        meta.push(label.len() as u8);
        meta.extend_from_slice(label);
        meta.extend_from_slice(&count.to_le_bytes());
        meta.extend_from_slice(&self.engine.meta_blob());
        SnapshotBuilder::new(domain, epoch)
            .section(KVS_SECTION, items)
            .section(STORAGE_META_SECTION, meta)
            .seal(ctx, sealer)
    }

    /// Encodes only the items whose write stamp is `>= base` — the
    /// delta log for an incremental snapshot. Same framing as
    /// [`Self::encode_items`].
    fn encode_items_since(&self, ctx: &mut ThreadCtx, base: u64) -> Vec<u8> {
        let mut body = Vec::new();
        let mut count = 0u64;
        self.engine
            .for_each(ctx, &mut |key, value, version, expiry| {
                if version < base {
                    return;
                }
                body.extend_from_slice(&(key.len() as u32).to_le_bytes());
                body.extend_from_slice(&(value.len() as u32).to_le_bytes());
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&expiry.to_le_bytes());
                body.extend_from_slice(key);
                body.extend_from_slice(value);
                count += 1;
            });
        let mut plain = Vec::with_capacity(8 + body.len());
        plain.extend_from_slice(&count.to_le_bytes());
        plain.extend_from_slice(&body);
        plain
    }

    /// Incremental flavor of [`Self::snapshot`]: captures only the
    /// items written at stamp `>= base`, so a receiver that already
    /// holds everything below `base` can catch up from the delta
    /// alone. `base = 0` degenerates to a full snapshot. The
    /// `"storage-meta"` section carries the *delta* item count, so
    /// [`Self::restore`] applies unchanged. The maintenance plane
    /// streams these in chunks between failover fences; the number of
    /// delta items is published as `snapshot_delta_items`.
    #[must_use]
    pub fn snapshot_since(
        &self,
        ctx: &mut ThreadCtx,
        sealer: &dyn Sealer,
        domain: u32,
        epoch: u64,
        base: u64,
    ) -> Snapshot {
        let items = self.encode_items_since(ctx, base);
        let count = u64::from_le_bytes(items[..8].try_into().expect("count"));
        ctx.compute(count * ctx.machine.cfg.costs.snapshot_delta_item);
        Stats::add(&ctx.machine.stats.snapshot_delta_items, count);
        let label = self.engine.label().as_bytes();
        let mut meta = Vec::with_capacity(1 + label.len() + 8);
        meta.push(label.len() as u8);
        meta.extend_from_slice(label);
        meta.extend_from_slice(&count.to_le_bytes());
        meta.extend_from_slice(&self.engine.meta_blob());
        SnapshotBuilder::new(domain, epoch)
            .section(KVS_SECTION, items)
            .section(STORAGE_META_SECTION, meta)
            .seal(ctx, sealer)
    }

    /// Restores items from a portable [`Snapshot`] captured by
    /// [`Self::snapshot`] (possibly by a different enclave — snapshots
    /// are sealed under a shared key precisely so a replica can
    /// restore a dead sibling's state, and possibly by a *different
    /// engine* — the item log is engine-neutral). The merge is
    /// last-writer-wins on the per-item write stamp, so a stale copy
    /// re-imported after bouncing through another replica never
    /// clobbers a fresher value. Returns the number of items applied
    /// (inserted or overwritten).
    ///
    /// # Panics
    /// Panics when the snapshot lacks the `"kvs-items"` section, fails
    /// authentication, or its `"storage-meta"` item count disagrees
    /// with the item log (a mis-assembled snapshot).
    pub fn restore(&mut self, ctx: &mut ThreadCtx, sealer: &dyn Sealer, snap: &Snapshot) -> u64 {
        let plain = snap.open(ctx, sealer, KVS_SECTION);
        if snap.has_section(STORAGE_META_SECTION) {
            let meta = snap.open(ctx, sealer, STORAGE_META_SECTION);
            let label_len = meta[0] as usize;
            let declared = u64::from_le_bytes(
                meta[1 + label_len..1 + label_len + 8]
                    .try_into()
                    .expect("storage-meta count"),
            );
            let logged = u64::from_le_bytes(plain[..8].try_into().expect("count"));
            assert_eq!(
                declared, logged,
                "storage-meta item count disagrees with the item log"
            );
        }
        self.decode_items(ctx, &plain)
    }

    /// Serializes every item into a sealed snapshot blob
    /// (`AES-GCM(count || (klen,vlen,version,expiry,key,value)*)`),
    /// suitable for writing to the untrusted host filesystem for warm
    /// restarts.
    #[must_use]
    pub fn sealed_snapshot(
        &self,
        ctx: &mut ThreadCtx,
        cipher: &eleos_crypto::gcm::AesGcm128,
        nonce: &eleos_crypto::gcm::Nonce,
    ) -> Vec<u8> {
        let mut blob = self.encode_items(ctx);
        ctx.compute(ctx.machine.cfg.costs.crypto(blob.len()));
        let tag = cipher.seal(nonce, b"kvs-snapshot", &mut blob);
        let mut out = Vec::with_capacity(12 + 16 + blob.len());
        out.extend_from_slice(nonce);
        out.extend_from_slice(&tag);
        out.extend_from_slice(&blob);
        out
    }

    /// Restores items from a sealed snapshot produced by
    /// [`Self::sealed_snapshot`]. Returns the number of items loaded.
    ///
    /// # Panics
    /// Panics if the snapshot fails authentication (tampered file).
    pub fn restore_snapshot(
        &mut self,
        ctx: &mut ThreadCtx,
        cipher: &eleos_crypto::gcm::AesGcm128,
        blob: &[u8],
    ) -> u64 {
        assert!(blob.len() >= 28, "short snapshot");
        let nonce: eleos_crypto::gcm::Nonce = blob[..12].try_into().expect("nonce");
        let tag: eleos_crypto::gcm::Tag = blob[12..28].try_into().expect("tag");
        let mut plain = blob[28..].to_vec();
        cipher
            .open(&nonce, b"kvs-snapshot", &mut plain, &tag)
            .expect("KVS snapshot failed authentication: file tampered");
        ctx.compute(ctx.machine.cfg.costs.crypto(plain.len()));
        self.decode_items(ctx, &plain)
    }

    /// Handles one protocol request. Returns `false` when the socket
    /// queue is drained.
    ///
    /// Request plaintext: `[op u8][key_len u16][val_len u32][key][value]`
    /// with op 0 = GET, 1 = SET, 2 = SET-with-TTL (a `ttl u32` in
    /// seconds follows `val_len`, shifting the key to offset 11).
    /// Response: GET → `[1][val_len][value]` or `[0]`; SET and
    /// SET-with-TTL → `[1]`.
    pub fn handle_request(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> bool {
        let Some(plain) = io.recv_msg(ctx) else {
            return false;
        };
        let resp = self.process(ctx, &plain);
        io.send_msg(ctx, &resp);
        true
    }

    /// Handles up to `io.cfg.batch` protocol requests as one
    /// pipelined batch: receives posted together, the whole reap
    /// decrypted in one batched crypto pass, lookups run back-to-back,
    /// responses batch-encrypted and sent together — on the RPC path
    /// each I/O stage is a single amortized ring submission instead of
    /// per-message handoffs. The batch boundary is a storage fence.
    /// Returns the number of requests handled.
    pub fn handle_batch(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> usize {
        let requests = io.recv_batch(ctx);
        let replies: Vec<Vec<u8>> = requests
            .iter()
            .map(|plain| self.process(ctx, plain))
            .collect();
        io.send_batch(ctx, &replies);
        if !requests.is_empty() {
            self.engine.fence(ctx);
        }
        requests.len()
    }

    /// [`Self::handle_batch`] over a shard subset: reaps only the
    /// `active` shards (a fleet replica's owned slice of the shared
    /// socket set), serves, and sends. Returns the number of requests
    /// handled.
    pub fn handle_batch_on(
        &mut self,
        ctx: &mut ThreadCtx,
        io: &ServerIo,
        active: &[usize],
    ) -> usize {
        let requests = io.recv_batch_on(ctx, active);
        let replies: Vec<Vec<u8>> = requests
            .iter()
            .map(|plain| self.process(ctx, plain))
            .collect();
        io.send_batch(ctx, &replies);
        if !requests.is_empty() {
            self.engine.fence(ctx);
        }
        requests.len()
    }

    /// Executes one decrypted binary-protocol request, returning the
    /// response plaintext.
    fn process(&mut self, ctx: &mut ThreadCtx, plain: &[u8]) -> Vec<u8> {
        let op = plain[0];
        let klen = u16::from_le_bytes(plain[1..3].try_into().expect("short header")) as usize;
        let vlen = u32::from_le_bytes(plain[3..7].try_into().expect("short header")) as usize;
        let key = &plain[7..7 + klen];
        match op {
            0 => match self.get(ctx, key) {
                Some(value) => {
                    let mut resp = Vec::with_capacity(5 + value.len());
                    resp.push(1u8);
                    resp.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    resp.extend_from_slice(&value);
                    resp
                }
                None => vec![0u8],
            },
            1 => {
                let value = &plain[7 + klen..7 + klen + vlen];
                self.set(ctx, key, value);
                vec![1u8]
            }
            2 => {
                let ttl = u32::from_le_bytes(plain[7..11].try_into().expect("short header"));
                let key = &plain[11..11 + klen];
                let value = &plain[11 + klen..11 + klen + vlen];
                self.set_with_ttl(ctx, key, value, ttl);
                vec![1u8]
            }
            other => panic!("unknown KVS opcode {other}"),
        }
    }
}

/// Builds a GET request plaintext.
#[must_use]
pub fn build_get(key: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(7 + key.len());
    p.push(0u8);
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(&0u32.to_le_bytes());
    p.extend_from_slice(key);
    p
}

/// Builds a SET request plaintext.
#[must_use]
pub fn build_set(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(7 + key.len() + value.len());
    p.push(1u8);
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(&(value.len() as u32).to_le_bytes());
    p.extend_from_slice(key);
    p.extend_from_slice(value);
    p
}

/// Builds a SET-with-TTL request plaintext (`ttl_secs = 0` never
/// expires — same convention as [`Kvs::set_with_ttl`]).
#[must_use]
pub fn build_set_ttl(key: &[u8], value: &[u8], ttl_secs: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(11 + key.len() + value.len());
    p.push(2u8);
    p.extend_from_slice(&(key.len() as u16).to_le_bytes());
    p.extend_from_slice(&(value.len() as u32).to_le_bytes());
    p.extend_from_slice(&ttl_secs.to_le_bytes());
    p.extend_from_slice(key);
    p.extend_from_slice(value);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_core::{Suvm, SuvmConfig};
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    use crate::storage::SegmentConfig;

    fn untrusted_kvs(limit: u64) -> (Kvs, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let kvs = Kvs::new(space.clone(), space, limit, 1024);
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (kvs, t)
    }

    fn untrusted_kvs_with(limit: u64, cfg: &EngineConfig) -> (Kvs, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let kvs = Kvs::with_engine(space.clone(), space, limit, 1024, cfg);
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (kvs, t)
    }

    #[test]
    fn set_get_delete() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        kvs.set(&mut t, b"hello", b"world");
        assert_eq!(kvs.get(&mut t, b"hello").unwrap(), b"world");
        assert_eq!(kvs.get(&mut t, b"missing"), None);
        kvs.set(&mut t, b"hello", b"again");
        assert_eq!(kvs.get(&mut t, b"hello").unwrap(), b"again");
        assert_eq!(kvs.len(), 1);
        assert!(kvs.delete(&mut t, b"hello"));
        assert!(!kvs.delete(&mut t, b"hello"));
        assert!(kvs.is_empty());
        t.exit();
    }

    #[test]
    fn many_keys_survive_collisions() {
        let (mut kvs, mut t) = untrusted_kvs(32 << 20);
        kvs.init(&mut t);
        for i in 0..2000u32 {
            let key = format!("key-{i:05}");
            let value = vec![(i % 251) as u8; 100 + (i as usize % 300)];
            kvs.set(&mut t, key.as_bytes(), &value);
        }
        for i in 0..2000u32 {
            let key = format!("key-{i:05}");
            let value = vec![(i % 251) as u8; 100 + (i as usize % 300)];
            assert_eq!(kvs.get(&mut t, key.as_bytes()).unwrap(), value, "{key}");
        }
        t.exit();
    }

    #[test]
    fn lru_evicts_coldest_under_memory_pressure() {
        // Limit = 2 slabs; 1 KiB values -> eviction must kick in.
        let (mut kvs, mut t) = untrusted_kvs(2 << 20);
        kvs.init(&mut t);
        let value = vec![7u8; 1024];
        for i in 0..4000u32 {
            kvs.set(&mut t, format!("k{i}").as_bytes(), &value);
        }
        assert!(kvs.evictions() > 0, "LRU must have evicted");
        // The most recent keys are present; the oldest are gone.
        assert!(kvs.get(&mut t, b"k3999").is_some());
        assert!(kvs.get(&mut t, b"k0").is_none());
        t.exit();
    }

    #[test]
    fn value_resize_moves_class() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        kvs.set(&mut t, b"k", &[1u8; 64]);
        kvs.set(&mut t, b"k", &vec![2u8; 8000]);
        assert_eq!(kvs.get(&mut t, b"k").unwrap(), vec![2u8; 8000]);
        assert_eq!(kvs.len(), 1);
        t.exit();
    }

    #[test]
    fn suvm_backed_kvs_with_clear_metadata() {
        // The paper's split: metadata clear, kv pairs in SUVM.
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 16 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let suvm = Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 1 << 20,
                backing_bytes: 16 << 20,
                ..SuvmConfig::tiny()
            },
        );
        let mut kvs = Kvs::new(
            DataSpace::Untrusted(Arc::clone(&m)),
            DataSpace::suvm(&suvm),
            8 << 20,
            1024,
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        kvs.init(&mut t);
        // Working set (8 MiB) >> EPC++ (1 MiB): SUVM pages for us.
        for i in 0..1500u32 {
            kvs.set(
                &mut t,
                format!("key-{i}").as_bytes(),
                &vec![(i % 250) as u8; 4096],
            );
        }
        for i in (0..1500u32).step_by(97) {
            assert_eq!(
                kvs.get(&mut t, format!("key-{i}").as_bytes()).unwrap(),
                vec![(i % 250) as u8; 4096]
            );
        }
        let s = m.stats.snapshot();
        assert!(s.suvm_evictions > 0, "SUVM must have paged");
        assert_eq!(s.enclave_exits, 0, "no exits during pure KVS ops");
        t.exit();
    }

    #[test]
    fn ttl_expiry_is_lazy_and_correct() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        // ~2 simulated seconds of TTL; the clock only moves when we
        // charge cycles.
        kvs.set_with_ttl(&mut t, b"ephemeral", b"soon gone", 2);
        kvs.set(&mut t, b"durable", b"stays");
        assert_eq!(kvs.get(&mut t, b"ephemeral").unwrap(), b"soon gone");
        // Advance simulated time past the deadline (3.4e9 cycles/sec).
        t.compute(3 * 3_400_000_000);
        assert_eq!(kvs.get(&mut t, b"ephemeral"), None, "expired");
        assert_eq!(kvs.len(), 1, "lazy delete reclaimed the item");
        assert_eq!(kvs.expired(), 1);
        assert_eq!(kvs.get(&mut t, b"durable").unwrap(), b"stays");
        // Re-inserting after expiry works.
        kvs.set(&mut t, b"ephemeral", b"back");
        assert_eq!(kvs.get(&mut t, b"ephemeral").unwrap(), b"back");
        t.exit();
    }

    #[test]
    fn segment_engine_serves_the_same_api() {
        let cfg = EngineConfig::Segment(SegmentConfig::default());
        let (mut kvs, mut t) = untrusted_kvs_with(8 << 20, &cfg);
        kvs.init(&mut t);
        assert_eq!(kvs.engine_label(), "segment");
        for i in 0..500u32 {
            kvs.set(&mut t, format!("s-{i}").as_bytes(), &[(i % 97) as u8; 64]);
        }
        for i in (0..500u32).step_by(7) {
            assert_eq!(
                kvs.get(&mut t, format!("s-{i}").as_bytes()).unwrap(),
                vec![(i % 97) as u8; 64]
            );
        }
        assert!(kvs.delete(&mut t, b"s-0"));
        assert_eq!(kvs.len(), 499);
        kvs.fence(&mut t);
        t.exit();
    }

    #[test]
    fn snapshot_restores_across_engines() {
        // Seal from a slab store, restore into a segment store: the
        // item log is engine-neutral.
        use eleos_crypto::gcm::AesGcm128;
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        kvs.set_with_ttl(&mut t, b"short", b"lived", 300);
        kvs.set(&mut t, b"forever", b"kept");
        let sealer = AesGcm128::new(&[0x44u8; 16]);
        let snap = kvs.snapshot(&mut t, &sealer, 9, 1);
        let m = Arc::clone(&t.machine);
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut seg = Kvs::with_engine(
            space.clone(),
            space,
            8 << 20,
            1024,
            &EngineConfig::Segment(SegmentConfig::default()),
        );
        seg.init(&mut t);
        assert_eq!(seg.restore(&mut t, &sealer, &snap), 2);
        assert_eq!(seg.get(&mut t, b"short").unwrap(), b"lived");
        assert_eq!(seg.get(&mut t, b"forever").unwrap(), b"kept");
        t.exit();
    }

    #[test]
    fn portable_snapshot_restores_into_a_different_store() {
        use eleos_crypto::gcm::AesGcm128;
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        for i in 0..150u32 {
            kvs.set(
                &mut t,
                format!("item-{i}").as_bytes(),
                &vec![(i % 200) as u8; 32 + i as usize],
            );
        }
        let sealer = AesGcm128::new(&[0x33u8; 16]);
        let snap = kvs.snapshot(&mut t, &sealer, 7, 42);
        assert_eq!(snap.epoch(), 42);
        // Round-trip through the byte form a cross-enclave channel
        // would carry; the payload is ciphertext end-to-end.
        let bytes = snap.to_bytes();
        assert!(!bytes.windows(6).any(|w| w == b"item-1"));
        let reread = eleos_core::Snapshot::from_bytes(&bytes);

        let m = Arc::clone(&t.machine);
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut kvs2 = Kvs::new(space.clone(), space, 8 << 20, 1024);
        kvs2.init(&mut t);
        assert_eq!(kvs2.restore(&mut t, &sealer, &reread), 150);
        for i in (0..150u32).step_by(17) {
            assert_eq!(
                kvs2.get(&mut t, format!("item-{i}").as_bytes()).unwrap(),
                vec![(i % 200) as u8; 32 + i as usize]
            );
        }
        // Restore merges on top of existing state — the failover heir
        // keeps its own items, and a re-import of the same snapshot
        // applies nothing (every entry is stale-or-equal by stamp).
        kvs2.set(&mut t, b"heir-own", b"survives");
        assert_eq!(kvs2.restore(&mut t, &sealer, &reread), 0);
        assert_eq!(kvs2.get(&mut t, b"heir-own").unwrap(), b"survives");
        assert_eq!(kvs2.len(), 151);
        t.exit();
    }

    #[test]
    fn sealed_snapshot_roundtrip_via_host_fs() {
        use eleos_crypto::gcm::AesGcm128;
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        for i in 0..200u32 {
            kvs.set(
                &mut t,
                format!("snap-{i}").as_bytes(),
                &vec![i as u8; 64 + i as usize],
            );
        }
        let cipher = AesGcm128::new(&[0x51u8; 16]);
        let blob = kvs.sealed_snapshot(&mut t, &cipher, &[7u8; 12]);
        // The snapshot is sealed: no key material visible.
        assert!(!blob.windows(6).any(|w| w == b"snap-1"));

        // Write it to the host filesystem through the syscall layer
        // and read it back (as a warm-restarting server would).
        let m = Arc::clone(&t.machine);
        let mut ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.fs.open(&mut ut, "/var/kvs.snapshot");
        let staging = m.alloc_untrusted(blob.len().next_power_of_two());
        ut.write_untrusted(staging, &blob);
        assert_eq!(
            m.fs.write(&mut ut, fd, staging, blob.len()).unwrap(),
            blob.len()
        );
        m.fs.seek(&mut ut, fd, 0).unwrap();
        let n = m.fs.read(&mut ut, fd, staging, blob.len()).unwrap();
        assert_eq!(n, blob.len());
        let mut reread = vec![0u8; n];
        ut.read_untrusted(staging, &mut reread);

        // A fresh store restores everything.
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut kvs2 = Kvs::new(space.clone(), space, 8 << 20, 1024);
        kvs2.init(&mut t);
        assert_eq!(kvs2.restore_snapshot(&mut t, &cipher, &reread), 200);
        for i in (0..200u32).step_by(23) {
            assert_eq!(
                kvs2.get(&mut t, format!("snap-{i}").as_bytes()).unwrap(),
                vec![i as u8; 64 + i as usize]
            );
        }

        // A tampered snapshot is rejected.
        let mut bad = reread.clone();
        bad[40] ^= 1;
        let mut kvs3 = Kvs::new(
            DataSpace::Untrusted(Arc::clone(&m)),
            DataSpace::Untrusted(Arc::clone(&m)),
            8 << 20,
            1024,
        );
        kvs3.init(&mut t);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kvs3.restore_snapshot(&mut t, &cipher, &bad)
        }));
        assert!(r.is_err(), "tampered snapshot accepted");
        t.exit();
    }

    #[test]
    fn snapshot_preserves_remaining_ttl() {
        use eleos_crypto::gcm::AesGcm128;
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        kvs.set_with_ttl(&mut t, b"ttl-10", b"v", 10);
        kvs.set(&mut t, b"no-ttl", b"w");
        let sealer = AesGcm128::new(&[0x66u8; 16]);
        let snap = kvs.snapshot(&mut t, &sealer, 1, 1);

        // Restore 4 simulated seconds later: 6 seconds remain.
        let m = Arc::clone(&t.machine);
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut kvs2 = Kvs::new(space.clone(), space, 8 << 20, 1024);
        kvs2.init(&mut t);
        t.compute(4 * 3_400_000_000);
        assert_eq!(kvs2.restore(&mut t, &sealer, &snap), 2);
        assert_eq!(kvs2.get(&mut t, b"ttl-10").unwrap(), b"v");
        // Past the original deadline the item is gone, proving the
        // absolute expiry (not a fresh TTL) was restored.
        t.compute(7 * 3_400_000_000);
        assert_eq!(kvs2.get(&mut t, b"ttl-10"), None, "deadline preserved");
        assert_eq!(kvs2.get(&mut t, b"no-ttl").unwrap(), b"w");

        // A snapshot restored *after* the deadline drops the item
        // entirely instead of resurrecting it.
        let mut kvs3 = Kvs::new(
            DataSpace::Untrusted(Arc::clone(&m)),
            DataSpace::Untrusted(Arc::clone(&m)),
            8 << 20,
            1024,
        );
        kvs3.init(&mut t);
        assert_eq!(kvs3.restore(&mut t, &sealer, &snap), 1, "expired dropped");
        assert_eq!(kvs3.len(), 1);
        t.exit();
    }

    #[test]
    fn for_each_item_skips_expired() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        kvs.set_with_ttl(&mut t, b"gone-soon", b"x", 2);
        kvs.set(&mut t, b"stays", b"y");
        let mut seen = Vec::new();
        kvs.for_each_item(&mut t, |k, _| seen.push(k.to_vec()));
        assert_eq!(seen.len(), 2);
        t.compute(3 * 3_400_000_000);
        seen.clear();
        kvs.for_each_item(&mut t, |k, _| seen.push(k.to_vec()));
        assert_eq!(seen, vec![b"stays".to_vec()], "expired item visited");
        t.exit();
    }

    #[test]
    fn protocol_requests() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        let m = Arc::clone(&t.machine);
        let wire = Arc::new(crate::wire::Session::established([3u8; 16]));
        let fd = m.host.socket(&t, 64 << 10);
        let io = crate::io::ServerIoConfig::with_buf_len(32 << 10).build(
            &t,
            &[fd],
            crate::io::IoPath::Ocall,
            Arc::clone(&wire),
        );
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_set(b"alpha", b"beta")));
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_get(b"alpha")));
        assert!(kvs.handle_request(&mut t, &io));
        assert!(kvs.handle_request(&mut t, &io));
        assert!(!kvs.handle_request(&mut t, &io), "queue drained");
        // SET ack then GET hit.
        assert_eq!(wire.decrypt(&m.host.pop_response(fd).unwrap()), &[1u8]);
        let get_resp = wire.decrypt(&m.host.pop_response(fd).unwrap());
        assert_eq!(get_resp[0], 1);
        assert_eq!(&get_resp[5..], b"beta");
        t.exit();
    }

    #[test]
    fn protocol_set_with_ttl_expires_client_visible() {
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        let m = Arc::clone(&t.machine);
        let wire = Arc::new(crate::wire::Session::established([3u8; 16]));
        let fd = m.host.socket(&t, 64 << 10);
        let io = crate::io::ServerIoConfig::with_buf_len(32 << 10).build(
            &t,
            &[fd],
            crate::io::IoPath::Ocall,
            Arc::clone(&wire),
        );
        m.host.push_request(
            &t,
            fd,
            &wire.encrypt(&build_set_ttl(b"session", b"token", 5)),
        );
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_get(b"session")));
        assert!(kvs.handle_request(&mut t, &io));
        assert!(kvs.handle_request(&mut t, &io));
        assert_eq!(wire.decrypt(&m.host.pop_response(fd).unwrap()), &[1u8]);
        let hit = wire.decrypt(&m.host.pop_response(fd).unwrap());
        assert_eq!(hit[0], 1);
        assert_eq!(&hit[5..], b"token");
        // Past the deadline the same GET misses.
        t.compute(6 * 3_400_000_000);
        m.host
            .push_request(&t, fd, &wire.encrypt(&build_get(b"session")));
        assert!(kvs.handle_request(&mut t, &io));
        assert_eq!(
            wire.decrypt(&m.host.pop_response(fd).unwrap()),
            &[0u8],
            "TTL'd item must expire"
        );
        t.exit();
    }

    #[test]
    fn incremental_snapshot_carries_only_the_delta() {
        use eleos_crypto::gcm::AesGcm128;
        let (mut kvs, mut t) = untrusted_kvs(8 << 20);
        kvs.init(&mut t);
        for i in 0..40u32 {
            kvs.set(&mut t, format!("base-{i}").as_bytes(), &[i as u8; 24]);
        }
        // Everything so far is stamp 0; open interval 2 for the
        // writes the delta must capture.
        kvs.set_write_version(2);
        kvs.set(&mut t, b"fresh-a", b"one");
        kvs.set(&mut t, b"base-7", b"rewritten");
        let sealer = AesGcm128::new(&[0x77u8; 16]);
        let delta = kvs.snapshot_since(&mut t, &sealer, 3, 5, 2);
        assert_eq!(delta.epoch(), 5);

        // A receiver already holding the base catches up from the
        // delta alone.
        let m = Arc::clone(&t.machine);
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut peer = Kvs::new(space.clone(), space, 8 << 20, 1024);
        peer.init(&mut t);
        for i in 0..40u32 {
            peer.set(&mut t, format!("base-{i}").as_bytes(), &[i as u8; 24]);
        }
        assert_eq!(peer.restore(&mut t, &sealer, &delta), 2, "delta items only");
        assert_eq!(peer.get(&mut t, b"fresh-a").unwrap(), b"one");
        assert_eq!(peer.get(&mut t, b"base-7").unwrap(), b"rewritten");
        assert_eq!(peer.len(), 41);
        assert_eq!(m.stats.snapshot().snapshot_delta_items, 2);

        // base = 0 degenerates to a full snapshot.
        let full = kvs.snapshot_since(&mut t, &sealer, 3, 6, 0);
        let space2 = DataSpace::Untrusted(Arc::clone(&m));
        let mut fresh = Kvs::new(space2.clone(), space2, 8 << 20, 1024);
        fresh.init(&mut t);
        assert_eq!(fresh.restore(&mut t, &sealer, &full), 41);
        t.exit();
    }
}
