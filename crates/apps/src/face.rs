//! The face-verification server (paper §5.2).
//!
//! A biometric identity-checking server in the style of border-control
//! kiosks: it stores a histogram of local binary patterns (LBP, the
//! paper's \[6\]) per enrolled identity, and verifies a claimed
//! identity by comparing the stored histogram against one computed
//! from the image in the request (chi-square distance).
//!
//! The FERET dataset is not available, so enrollment uses seeded
//! procedural 512×512 grayscale images (smooth sinusoidal textures
//! unique per identity); a genuine verification attempt presents a
//! noisy re-capture of the enrolled image, an impostor presents a
//! different identity's image. The systems behaviour the paper
//! measures — one large (~232 KiB) secure-memory read plus fixed CPU
//! work per request — is preserved exactly.

use eleos_enclave::thread::ThreadCtx;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::io::ServerIo;
use crate::space::DataSpace;

/// Image side (the paper resizes FERET images to 512×512).
pub const IMG_SIDE: usize = 512;
/// LBP histogram block side in pixels.
pub const BLOCK: usize = 16;
/// Histogram bins per block: 58 uniform patterns + 1 catch-all.
pub const BINS: usize = 59;

/// Cycles of LBP arithmetic per pixel (neighborhood compare + bin
/// update, at AVX2 rates — LBP vectorizes well).
const LBP_CYCLES_PER_PIXEL: u64 = 6;
/// Cycles per histogram bin for the chi-square comparison.
const CHI2_CYCLES_PER_BIN: u64 = 4;

/// Histogram size in bytes for a `side`×`side` image.
#[must_use]
pub fn hist_bytes(side: usize) -> usize {
    let blocks = (side / BLOCK) * (side / BLOCK);
    blocks * BINS * 4
}

/// The uniform-LBP code mapping: 256 codes → 59 bins.
fn uniform_map() -> [u8; 256] {
    let mut map = [0u8; 256];
    let mut next = 1u8;
    for (code, slot) in map.iter_mut().enumerate() {
        let transitions = (0..8)
            .filter(|&i| {
                let a = (code >> i) & 1;
                let b = (code >> ((i + 1) % 8)) & 1;
                a != b
            })
            .count();
        if transitions <= 2 {
            *slot = next;
            next += 1;
        } else {
            *slot = 0; // non-uniform catch-all bin
        }
    }
    debug_assert_eq!(next as usize, BINS);
    map
}

/// Computes the blocked uniform-LBP histogram of a grayscale image.
///
/// # Panics
/// Panics if the image is not `side`×`side` or `side` is not a
/// multiple of [`BLOCK`].
#[must_use]
pub fn lbp_histogram(image: &[u8], side: usize) -> Vec<u32> {
    assert_eq!(image.len(), side * side, "image size mismatch");
    assert_eq!(side % BLOCK, 0);
    let map = uniform_map();
    let blocks_per_row = side / BLOCK;
    let mut hist = vec![0u32; blocks_per_row * blocks_per_row * BINS];
    for y in 1..side - 1 {
        for x in 1..side - 1 {
            let c = image[y * side + x];
            let mut code = 0u8;
            let neigh = [
                image[(y - 1) * side + (x - 1)],
                image[(y - 1) * side + x],
                image[(y - 1) * side + (x + 1)],
                image[y * side + (x + 1)],
                image[(y + 1) * side + (x + 1)],
                image[(y + 1) * side + x],
                image[(y + 1) * side + (x - 1)],
                image[y * side + (x - 1)],
            ];
            for (i, &n) in neigh.iter().enumerate() {
                if n >= c {
                    code |= 1 << i;
                }
            }
            let block = (y / BLOCK) * blocks_per_row + (x / BLOCK);
            hist[block * BINS + map[code as usize] as usize] += 1;
        }
    }
    hist
}

/// Chi-square distance between two histograms.
#[must_use]
pub fn chi_square(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let (x, y) = (x as f64, y as f64);
            if x + y > 0.0 {
                (x - y) * (x - y) / (x + y)
            } else {
                0.0
            }
        })
        .sum()
}

/// Generates identity `id`'s reference image: a smooth, identity-unique
/// sinusoidal texture.
#[must_use]
pub fn synth_image(id: u64, side: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(id.wrapping_mul(0x9e37_79b9));
    // A few random plane waves per identity.
    let waves: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.random_range(0.01..0.12),
                rng.random_range(0.01..0.12),
                rng.random_range(0.0..std::f64::consts::TAU),
                rng.random_range(20.0..60.0),
            )
        })
        .collect();
    let mut img = vec![0u8; side * side];
    for y in 0..side {
        for x in 0..side {
            let mut v = 128.0;
            for &(fx, fy, phase, amp) in &waves {
                v += amp * (fx * x as f64 + fy * y as f64 + phase).sin();
            }
            img[y * side + x] = v.clamp(0.0, 255.0) as u8;
        }
    }
    img
}

/// A noisy re-capture of `id`'s face (genuine verification attempt).
#[must_use]
pub fn synth_capture(id: u64, side: usize, capture_seed: u64) -> Vec<u8> {
    let mut img = synth_image(id, side);
    let mut rng = StdRng::seed_from_u64(id ^ capture_seed.wrapping_mul(0x2545_f491));
    for p in img.iter_mut() {
        let noise: i16 = rng.random_range(-2..=2);
        *p = (*p as i16 + noise).clamp(0, 255) as u8;
    }
    img
}

/// The enrolled-identity database: an open-addressing table of
/// identity → histogram blob, all in the secure [`DataSpace`].
pub struct FaceDb {
    space: DataSpace,
    side: usize,
    slots: u64,
    table: u64,
    entries: u64,
}

impl FaceDb {
    /// Creates a database with room for `capacity` identities.
    #[must_use]
    pub fn new(space: DataSpace, side: usize, capacity: u64) -> Self {
        let slots = (capacity * 2).next_power_of_two();
        let table = space.alloc((slots * 16) as usize);
        Self {
            space,
            side,
            slots,
            table,
            entries: 0,
        }
    }

    /// Zeroes the table.
    pub fn init(&self, ctx: &mut ThreadCtx) {
        let zeros = vec![0u8; 4096];
        let len = self.slots * 16;
        let mut off = 0u64;
        while off < len {
            let n = ((len - off) as usize).min(4096);
            self.space.write(ctx, self.table + off, &zeros[..n]);
            off += n as u64;
        }
    }

    /// Number of enrolled identities.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Bytes of histogram data stored.
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.entries * hist_bytes(self.side) as u64
    }

    /// Enrolls identity `id` (nonzero) with its reference histogram.
    pub fn enroll(&mut self, ctx: &mut ThreadCtx, id: u64, hist: &[u32]) {
        assert_ne!(id, 0);
        assert_eq!(hist.len() * 4, hist_bytes(self.side));
        let blob = self.space.alloc(hist_bytes(self.side));
        let bytes: Vec<u8> = hist.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.space.write(ctx, blob, &bytes);
        let mut slot = crate::param_server::hash64(id) & (self.slots - 1);
        loop {
            let addr = self.table + slot * 16;
            let k = self.space.read_u64(ctx, addr);
            if k == 0 {
                assert!(self.entries * 2 < self.slots, "face db over capacity");
                self.space.write_u64(ctx, addr, id);
                self.space.write_u64(ctx, addr + 8, blob);
                self.entries += 1;
                return;
            }
            assert_ne!(k, id, "identity already enrolled");
            slot = (slot + 1) & (self.slots - 1);
        }
    }

    /// Fetches `id`'s stored histogram — the request's single large
    /// secure read.
    #[must_use]
    pub fn fetch(&self, ctx: &mut ThreadCtx, id: u64) -> Option<Vec<u32>> {
        let mut slot = crate::param_server::hash64(id) & (self.slots - 1);
        loop {
            let addr = self.table + slot * 16;
            let k = self.space.read_u64(ctx, addr);
            if k == id {
                let blob = self.space.read_u64(ctx, addr + 8);
                let mut bytes = vec![0u8; hist_bytes(self.side)];
                self.space.read(ctx, blob, &mut bytes);
                return Some(
                    bytes
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
                        .collect(),
                );
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & (self.slots - 1);
        }
    }
}

/// The verification server.
pub struct FaceServer {
    /// The enrolled database.
    pub db: FaceDb,
    /// Accept when the chi-square distance is below this.
    pub threshold: f64,
    accepted: u64,
    rejected: u64,
}

impl FaceServer {
    /// Wraps a database with a decision threshold.
    #[must_use]
    pub fn new(db: FaceDb, threshold: f64) -> Self {
        Self {
            db,
            threshold,
            accepted: 0,
            rejected: 0,
        }
    }

    /// `(accepted, rejected)` decision counts.
    #[must_use]
    pub fn decisions(&self) -> (u64, u64) {
        (self.accepted, self.rejected)
    }

    /// Verifies a claimed identity against a presented image,
    /// returning the distance score (lower = more similar), or `None`
    /// for an unknown identity.
    pub fn verify(&mut self, ctx: &mut ThreadCtx, id: u64, image: &[u8]) -> Option<(f64, bool)> {
        let side = self.db.side;
        // LBP of the presented image: real compute, charged at
        // hardware-plausible rates.
        let hist = lbp_histogram(image, side);
        ctx.compute((side * side) as u64 * LBP_CYCLES_PER_PIXEL);
        let stored = self.db.fetch(ctx, id)?;
        let score = chi_square(&hist, &stored);
        ctx.compute(stored.len() as u64 * CHI2_CYCLES_PER_BIN);
        let ok = score < self.threshold;
        if ok {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
        Some((score, ok))
    }

    /// Handles one request from `io`. Returns `false` when the queue
    /// is drained.
    ///
    /// Request plaintext: `[id u64][side u32][pixels]`. Response:
    /// `[1]` accepted / `[0]` rejected / `[2]` unknown id.
    pub fn handle_request(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> bool {
        let Some(plain) = io.recv_msg(ctx) else {
            return false;
        };
        let resp = self.process(ctx, &plain);
        io.send_msg(ctx, &[resp]);
        true
    }

    /// Handles up to `io.cfg.batch` requests as one pipelined batch
    /// (receives posted together, the reap decrypted in one batched
    /// crypto pass, verifications run back-to-back, responses
    /// batch-encrypted and sent together — on the RPC path each I/O
    /// stage is a single amortized ring submission). Returns the
    /// number of requests handled.
    pub fn handle_batch(&mut self, ctx: &mut ThreadCtx, io: &ServerIo) -> usize {
        let requests = io.recv_batch(ctx);
        let replies: Vec<Vec<u8>> = requests
            .iter()
            .map(|plain| vec![self.process(ctx, plain)])
            .collect();
        io.send_batch(ctx, &replies);
        requests.len()
    }

    /// Verifies one decrypted request, returning the response byte.
    fn process(&mut self, ctx: &mut ThreadCtx, plain: &[u8]) -> u8 {
        let id = u64::from_le_bytes(plain[..8].try_into().expect("short request"));
        let side = u32::from_le_bytes(plain[8..12].try_into().expect("short request")) as usize;
        let image = &plain[12..12 + side * side];
        match self.verify(ctx, id, image) {
            Some((_, true)) => 1u8,
            Some((_, false)) => 0u8,
            None => 2u8,
        }
    }
}

/// Calibrates a decision threshold for a synthetic population:
/// samples genuine (noisy re-capture) and impostor (other identity)
/// scores for `n_probe` identities and returns the midpoint between
/// the worst genuine and best impostor score — an equal-error-rate
/// style operating point — together with the two score distributions'
/// extremes `(threshold, max_genuine, min_impostor)`.
#[must_use]
pub fn calibrate_threshold(
    ctx: &mut ThreadCtx,
    db: &FaceDb,
    side: usize,
    n_probe: u64,
    n_ids: u64,
) -> (f64, f64, f64) {
    assert!(n_ids >= 2);
    let mut max_genuine = f64::MIN;
    let mut min_impostor = f64::MAX;
    for i in 0..n_probe {
        let id = 1 + i % n_ids;
        let enrolled = db.fetch(ctx, id).expect("enrolled identity");
        let genuine = chi_square(
            &lbp_histogram(&synth_capture(id, side, 10_000 + i), side),
            &enrolled,
        );
        let other = 1 + (id % n_ids);
        let impostor = chi_square(&lbp_histogram(&synth_image(other, side), side), &enrolled);
        max_genuine = max_genuine.max(genuine);
        min_impostor = min_impostor.min(impostor);
    }
    (
        (max_genuine + min_impostor) / 2.0,
        max_genuine,
        min_impostor,
    )
}

/// Builds a verification request plaintext.
#[must_use]
pub fn build_verify_request(id: u64, side: usize, image: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + image.len());
    p.extend_from_slice(&id.to_le_bytes());
    p.extend_from_slice(&(side as u32).to_le_bytes());
    p.extend_from_slice(image);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    const SIDE: usize = 64; // small images keep unit tests fast

    #[test]
    fn histogram_shape_and_mass() {
        let img = synth_image(1, SIDE);
        let h = lbp_histogram(&img, SIDE);
        assert_eq!(h.len() * 4, hist_bytes(SIDE));
        let mass: u64 = h.iter().map(|&v| v as u64).sum();
        assert_eq!(
            mass,
            ((SIDE - 2) * (SIDE - 2)) as u64,
            "one code per interior pixel"
        );
    }

    #[test]
    fn uniform_map_has_59_bins() {
        let map = uniform_map();
        let max = *map.iter().max().unwrap();
        assert_eq!(max as usize, BINS - 1);
    }

    #[test]
    fn genuine_beats_impostor() {
        let enrolled = lbp_histogram(&synth_image(1, SIDE), SIDE);
        let genuine = lbp_histogram(&synth_capture(1, SIDE, 99), SIDE);
        let impostor = lbp_histogram(&synth_image(2, SIDE), SIDE);
        let d_genuine = chi_square(&enrolled, &genuine);
        let d_impostor = chi_square(&enrolled, &impostor);
        assert!(
            d_genuine < d_impostor,
            "genuine {d_genuine} must score below impostor {d_impostor}"
        );
    }

    #[test]
    fn full_verification_flow() {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 16 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let mut db = FaceDb::new(DataSpace::Enclave(Arc::clone(&e)), SIDE, 16);
        db.init(&mut t);
        for id in 1..=8u64 {
            db.enroll(&mut t, id, &lbp_histogram(&synth_image(id, SIDE), SIDE));
        }
        assert_eq!(db.len(), 8);
        // Pick the threshold midway between genuine and impostor
        // scores for identity 3.
        let enrolled = db.fetch(&mut t, 3).unwrap();
        let genuine = chi_square(&lbp_histogram(&synth_capture(3, SIDE, 7), SIDE), &enrolled);
        let impostor = chi_square(&lbp_histogram(&synth_image(5, SIDE), SIDE), &enrolled);
        let mut srv = FaceServer::new(db, (genuine + impostor) / 2.0);

        let (_, ok) = srv.verify(&mut t, 3, &synth_capture(3, SIDE, 8)).unwrap();
        assert!(ok, "genuine capture accepted");
        let (_, ok) = srv.verify(&mut t, 3, &synth_image(5, SIDE)).unwrap();
        assert!(!ok, "impostor rejected");
        assert!(srv.verify(&mut t, 99, &synth_image(1, SIDE)).is_none());
        assert_eq!(srv.decisions(), (1, 1));
        t.exit();
    }

    #[test]
    fn calibrated_threshold_separates_population() {
        // Larger images than the other unit tests: LBP needs texture
        // to discriminate a whole population.
        let side = 128;
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 64 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let mut db = FaceDb::new(DataSpace::Enclave(Arc::clone(&e)), side, 16);
        db.init(&mut t);
        for id in 1..=8u64 {
            db.enroll(&mut t, id, &lbp_histogram(&synth_image(id, side), side));
        }
        let (threshold, max_genuine, min_impostor) = calibrate_threshold(&mut t, &db, side, 8, 8);
        assert!(
            max_genuine < min_impostor,
            "synthetic population must separate: {max_genuine} vs {min_impostor}"
        );
        // The calibrated server classifies fresh probes correctly.
        let mut srv = FaceServer::new(db, threshold);
        for id in 1..=8u64 {
            let (_, ok) = srv
                .verify(&mut t, id, &synth_capture(id, side, 555 + id))
                .unwrap();
            assert!(ok, "genuine id {id}");
            let other = 1 + (id % 8);
            let (_, ok) = srv.verify(&mut t, id, &synth_image(other, side)).unwrap();
            assert!(!ok, "impostor against id {id}");
        }
        t.exit();
    }

    #[test]
    fn unknown_identity_fetch_is_none() {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 8 << 20);
        let mut t = eleos_enclave::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let mut db = FaceDb::new(DataSpace::Enclave(Arc::clone(&e)), SIDE, 4);
        db.init(&mut t);
        db.enroll(&mut t, 1, &lbp_histogram(&synth_image(1, SIDE), SIDE));
        assert!(db.fetch(&mut t, 2).is_none());
        t.exit();
    }
}
