//! The memcached ASCII protocol (a compatible subset), so the KVS can
//! serve real memcached clients' command format.
//!
//! Supported: `get <key>`, `set <key> <flags> <exptime> <bytes>` with
//! a data line, and `delete <key>` — enough for memaslap-style load.
//! Commands arrive as one wire message (command line + optional data
//! line, CRLF-separated), responses follow the memcached grammar
//! (`VALUE`/`END`, `STORED`, `DELETED`/`NOT_FOUND`).

use eleos_enclave::thread::ThreadCtx;

use crate::io::ServerIo;
use crate::kvs::Kvs;

/// Parse/format cost per command, in cycles.
const PARSE_CYCLES: u64 = 200;

/// One parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key> [<key>...]` (memcached multi-get).
    Get {
        /// The keys, in request order.
        keys: Vec<Vec<u8>>,
    },
    /// `set <key> <flags> <exptime> <bytes>` + data line.
    Set {
        /// The key.
        key: Vec<u8>,
        /// Opaque client flags (stored nowhere; accepted for
        /// compatibility).
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u32,
        /// The value.
        value: Vec<u8>,
    },
    /// `delete <key>`.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
}

/// Protocol parse errors (answered with `ERROR\r\n` by the server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub &'static str);

/// Parses one request (command line and, for `set`, its data line).
pub fn parse(msg: &[u8]) -> Result<Command, ParseError> {
    let line_end = msg
        .windows(2)
        .position(|w| w == b"\r\n")
        .ok_or(ParseError("missing CRLF"))?;
    let line = &msg[..line_end];
    let rest = &msg[line_end + 2..];
    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let verb = parts.next().ok_or(ParseError("empty command"))?;
    match verb {
        b"get" => {
            let keys: Vec<Vec<u8>> = parts.map(|k| k.to_vec()).collect();
            if keys.is_empty() {
                return Err(ParseError("get needs a key"));
            }
            Ok(Command::Get { keys })
        }
        b"delete" => {
            let key = parts.next().ok_or(ParseError("delete needs a key"))?;
            Ok(Command::Delete { key: key.to_vec() })
        }
        b"set" => {
            let key = parts.next().ok_or(ParseError("set needs a key"))?;
            let flags: u32 = parse_num(parts.next().ok_or(ParseError("set needs flags"))?)?;
            let exptime: u32 = parse_num(parts.next().ok_or(ParseError("set needs exptime"))?)?;
            let bytes: usize =
                parse_num(parts.next().ok_or(ParseError("set needs a byte count"))?)? as usize;
            if rest.len() < bytes + 2 || &rest[bytes..bytes + 2] != b"\r\n" {
                return Err(ParseError("bad data line"));
            }
            Ok(Command::Set {
                key: key.to_vec(),
                flags,
                exptime,
                value: rest[..bytes].to_vec(),
            })
        }
        _ => Err(ParseError("unknown verb")),
    }
}

fn parse_num(b: &[u8]) -> Result<u32, ParseError> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseError("bad number"))
}

/// Builds a `get` request.
#[must_use]
pub fn format_get(key: &[u8]) -> Vec<u8> {
    format_multi_get(&[key])
}

/// Builds a multi-key `get` request.
#[must_use]
pub fn format_multi_get(keys: &[&[u8]]) -> Vec<u8> {
    let mut m = b"get".to_vec();
    for key in keys {
        m.push(b' ');
        m.extend_from_slice(key);
    }
    m.extend_from_slice(b"\r\n");
    m
}

/// Builds a `set` request.
#[must_use]
pub fn format_set(key: &[u8], flags: u32, exptime: u32, value: &[u8]) -> Vec<u8> {
    let mut m = b"set ".to_vec();
    m.extend_from_slice(key);
    m.extend_from_slice(format!(" {flags} {exptime} {}\r\n", value.len()).as_bytes());
    m.extend_from_slice(value);
    m.extend_from_slice(b"\r\n");
    m
}

/// Builds a `delete` request.
#[must_use]
pub fn format_delete(key: &[u8]) -> Vec<u8> {
    let mut m = b"delete ".to_vec();
    m.extend_from_slice(key);
    m.extend_from_slice(b"\r\n");
    m
}

/// Serves one ASCII-protocol request from `io` against `kvs`.
/// Returns `false` when the socket is drained.
pub fn handle_text_request(kvs: &mut Kvs, ctx: &mut ThreadCtx, io: &ServerIo) -> bool {
    let Some(msg) = io.recv_msg(ctx) else {
        return false;
    };
    let resp = process_text(kvs, ctx, &msg);
    io.send_msg(ctx, &resp);
    true
}

/// Serves up to `io.cfg.batch` ASCII-protocol requests as one
/// pipelined batch (receives posted together, the reap decrypted in
/// one batched crypto pass, replies batch-encrypted and sent together
/// — one amortized ring submission per stage on the RPC path).
/// Returns the number of requests handled.
pub fn handle_text_batch(kvs: &mut Kvs, ctx: &mut ThreadCtx, io: &ServerIo) -> usize {
    let requests = io.recv_batch(ctx);
    let replies: Vec<Vec<u8>> = requests
        .iter()
        .map(|msg| process_text(kvs, ctx, msg))
        .collect();
    io.send_batch(ctx, &replies);
    requests.len()
}

/// Parses and executes one ASCII command, returning the response
/// plaintext.
fn process_text(kvs: &mut Kvs, ctx: &mut ThreadCtx, msg: &[u8]) -> Vec<u8> {
    ctx.compute(PARSE_CYCLES);
    match parse(msg) {
        Ok(Command::Get { keys }) => {
            let mut r = Vec::new();
            for key in keys {
                if let Some(value) = kvs.get(ctx, &key) {
                    r.extend_from_slice(b"VALUE ");
                    r.extend_from_slice(&key);
                    r.extend_from_slice(format!(" 0 {}\r\n", value.len()).as_bytes());
                    r.extend_from_slice(&value);
                    r.extend_from_slice(b"\r\n");
                }
            }
            r.extend_from_slice(b"END\r\n");
            r
        }
        Ok(Command::Set {
            key,
            exptime,
            value,
            ..
        }) => {
            kvs.set_with_ttl(ctx, &key, &value, exptime);
            b"STORED\r\n".to_vec()
        }
        Ok(Command::Delete { key }) => {
            if kvs.delete(ctx, &key) {
                b"DELETED\r\n".to_vec()
            } else {
                b"NOT_FOUND\r\n".to_vec()
            }
        }
        Err(_) => b"ERROR\r\n".to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary bytes, and whatever it
        /// accepts re-formats to an equivalent command.
        #[test]
        fn parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            if let Ok(cmd) = parse(&bytes) {
                let reformatted = match &cmd {
                    Command::Get { keys } => {
                        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                        format_multi_get(&refs)
                    }
                    Command::Delete { key } => format_delete(key),
                    Command::Set { key, flags, exptime, value } =>
                        format_set(key, *flags, *exptime, value),
                };
                // Keys containing spaces/CRLF cannot round-trip; only
                // check when the original key is clean.
                let dirty = |k: &Vec<u8>| k.iter().any(|&b| b == b' ' || b == b'\r' || b == b'\n');
                let clean = match &cmd {
                    Command::Get { keys } => !keys.iter().any(dirty),
                    Command::Delete { key } | Command::Set { key, .. } => !dirty(key),
                };
                if clean {
                    prop_assert_eq!(parse(&reformatted).unwrap(), cmd);
                }
            }
        }
    }

    #[test]
    fn parses_get_set_delete() {
        assert_eq!(
            parse(b"get user:1\r\n").unwrap(),
            Command::Get {
                keys: vec![b"user:1".to_vec()]
            }
        );
        assert_eq!(
            parse(b"get a bb ccc\r\n").unwrap(),
            Command::Get {
                keys: vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
            }
        );
        assert_eq!(
            parse(b"set k 7 60 5\r\nhello\r\n").unwrap(),
            Command::Set {
                key: b"k".to_vec(),
                flags: 7,
                exptime: 60,
                value: b"hello".to_vec()
            }
        );
        assert_eq!(
            parse(b"delete k\r\n").unwrap(),
            Command::Delete { key: b"k".to_vec() }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse(b"get\r\n").is_err());
        assert!(parse(b"set k 0 0 5\r\nhel\r\n").is_err(), "short data");
        assert!(parse(b"set k 0 0 nope\r\nhello\r\n").is_err());
        assert!(parse(b"flush_all\r\n").is_err());
        assert!(parse(b"no crlf").is_err());
    }

    #[test]
    fn format_parse_roundtrip() {
        let m = format_set(b"key-9", 3, 120, b"payload bytes");
        match parse(&m).unwrap() {
            Command::Set {
                key,
                flags,
                exptime,
                value,
            } => {
                assert_eq!(key, b"key-9");
                assert_eq!(flags, 3);
                assert_eq!(exptime, 120);
                assert_eq!(value, b"payload bytes");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse(&format_get(b"k")).unwrap(),
            Command::Get { .. }
        ));
        assert!(matches!(
            parse(&format_delete(b"k")).unwrap(),
            Command::Delete { .. }
        ));
    }

    #[test]
    fn binary_safe_values() {
        let value: Vec<u8> = (0..=255u8).collect(); // includes \r and \n
        let m = format_set(b"bin", 0, 0, &value);
        match parse(&m).unwrap() {
            Command::Set { value: v, .. } => assert_eq!(v, value),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn end_to_end_text_session() {
        use crate::io::IoPath;
        use crate::space::DataSpace;
        use crate::wire::Session;
        use eleos_enclave::machine::{MachineConfig, SgxMachine};
        use eleos_enclave::thread::ThreadCtx;
        use std::sync::Arc;

        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 8 << 20);
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut kvs = Kvs::new(space.clone(), space, 8 << 20, 1024);
        let wire = Arc::new(Session::established([6u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 64 << 10);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        kvs.init(&mut t);
        let io = crate::io::ServerIoConfig::with_buf_len(32 << 10).build(
            &t,
            &[fd],
            IoPath::Ocall,
            Arc::clone(&wire),
        );

        let session = [
            (
                format_set(b"greeting", 0, 0, b"hello"),
                b"STORED\r\n".to_vec(),
            ),
            (
                format_get(b"greeting"),
                b"VALUE greeting 0 5\r\nhello\r\nEND\r\n".to_vec(),
            ),
            (format_get(b"missing"), b"END\r\n".to_vec()),
            (format_delete(b"greeting"), b"DELETED\r\n".to_vec()),
            (format_delete(b"greeting"), b"NOT_FOUND\r\n".to_vec()),
            (b"gibberish\r\n".to_vec(), b"ERROR\r\n".to_vec()),
        ];
        // Multi-get: present keys listed in order, absent keys skipped.
        let multi = [
            (format_set(b"a", 0, 0, b"1"), b"STORED\r\n".to_vec()),
            (format_set(b"b", 0, 0, b"22"), b"STORED\r\n".to_vec()),
            (
                format_multi_get(&[b"a", b"missing", b"b"]),
                b"VALUE a 0 1\r\n1\r\nVALUE b 0 2\r\n22\r\nEND\r\n".to_vec(),
            ),
        ];
        for (req, expect) in session.into_iter().chain(multi) {
            m.host.push_request(&ut, fd, &wire.encrypt(&req));
            assert!(handle_text_request(&mut kvs, &mut t, &io));
            let resp = wire.decrypt(&m.host.pop_response(fd).expect("response"));
            assert_eq!(resp, expect, "request {:?}", String::from_utf8_lossy(&req));
        }
        t.exit();
    }

    #[test]
    fn batched_text_session_over_rpc_is_exitless() {
        use crate::io::IoPath;
        use crate::space::DataSpace;
        use crate::wire::Session;
        use eleos_enclave::machine::{MachineConfig, SgxMachine};
        use eleos_enclave::thread::ThreadCtx;
        use eleos_rpc::{with_syscalls, RpcService};
        use std::sync::Arc;

        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 8 << 20);
        let svc = Arc::new(
            with_syscalls(RpcService::builder(&m), &m)
                .workers(1, &[3])
                .build(),
        );
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mut kvs = Kvs::new(space.clone(), space, 8 << 20, 1024);
        let wire = Arc::new(Session::established([6u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 64 << 10);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        kvs.init(&mut t);
        let io = crate::io::ServerIoConfig::with_buf_len(32 << 10)
            .batch(4)
            .build(&t, &[fd], IoPath::Rpc(svc), Arc::clone(&wire));

        let session = [
            (format_set(b"a", 0, 0, b"1"), b"STORED\r\n".to_vec()),
            (format_set(b"b", 0, 0, b"22"), b"STORED\r\n".to_vec()),
            (format_get(b"a"), b"VALUE a 0 1\r\n1\r\nEND\r\n".to_vec()),
            (format_get(b"b"), b"VALUE b 0 2\r\n22\r\nEND\r\n".to_vec()),
        ];
        for (req, _) in &session {
            m.host.push_request(&ut, fd, &wire.encrypt(req));
        }
        let s0 = m.stats.snapshot();
        assert_eq!(handle_text_batch(&mut kvs, &mut t, &io), 4);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.enclave_exits, 0, "batched serving must not exit");
        assert_eq!(d.ocalls, 0);
        // One amortized ring submission per I/O stage: recv + send.
        assert_eq!(d.rpc_batches, 2);
        for (req, expect) in &session {
            let resp = wire.decrypt(&m.host.pop_response(fd).expect("response"));
            assert_eq!(&resp, expect, "request {:?}", String::from_utf8_lossy(req));
        }
        t.exit();
    }
}
