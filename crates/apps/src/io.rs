//! Server-side network I/O over the three syscall paths the paper
//! compares: direct (native), OCALL (vanilla SGX SDK / Graphene), and
//! Eleos exit-less RPC.

use std::sync::Arc;

use eleos_enclave::host::Fd;
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{funcs, RpcService};

use crate::wire::Wire;

/// How the server reaches the host OS.
#[derive(Clone)]
pub enum IoPath {
    /// Direct syscalls from untrusted code (the no-SGX baseline).
    Native,
    /// OCALL per syscall (vanilla SGX; also our stand-in for
    /// Graphene's exit path, §5.1).
    Ocall,
    /// Eleos exit-less RPC (§3.1).
    Rpc(Arc<RpcService>),
}

impl IoPath {
    /// Label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IoPath::Native => "native",
            IoPath::Ocall => "ocall",
            IoPath::Rpc(_) => "rpc",
        }
    }
}

/// One server connection: a socket plus untrusted staging buffers and
/// the session cipher.
pub struct ServerIo {
    /// The socket.
    pub fd: Fd,
    /// Untrusted receive buffer.
    pub rx_buf: u64,
    /// Untrusted transmit buffer.
    pub tx_buf: u64,
    buf_len: usize,
    /// Syscall mechanism.
    pub path: IoPath,
    /// Session cipher.
    pub wire: Arc<Wire>,
}

impl ServerIo {
    /// Allocates buffers of `buf_len` bytes and binds them to `fd`.
    #[must_use]
    pub fn new(ctx: &ThreadCtx, fd: Fd, buf_len: usize, path: IoPath, wire: Arc<Wire>) -> Self {
        Self {
            fd,
            rx_buf: ctx.machine.alloc_untrusted(buf_len),
            tx_buf: ctx.machine.alloc_untrusted(buf_len),
            buf_len,
            path,
            wire,
        }
    }

    /// Receives and decrypts one request. Returns `None` when the
    /// socket queue is empty.
    pub fn recv_msg(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        let machine = Arc::clone(&ctx.machine);
        let n = match &self.path {
            IoPath::Native => {
                assert!(!ctx.in_enclave(), "native path runs untrusted");
                machine.host.recv(ctx, self.fd, self.rx_buf, self.buf_len)?
            }
            IoPath::Ocall => {
                let fd = self.fd;
                let (rx, len) = (self.rx_buf, self.buf_len);
                let r = ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.recv(c, fd, rx, len)
                });
                r?
            }
            IoPath::Rpc(svc) => {
                let r = svc.call(
                    ctx,
                    funcs::RECV,
                    [self.fd.0 as u64, self.rx_buf, self.buf_len as u64, 0],
                );
                if r == u64::MAX {
                    return None;
                }
                r as usize
            }
        };
        let mut msg = vec![0u8; n];
        ctx.read_untrusted(self.rx_buf, &mut msg);
        // The paper's untrusted baseline also decrypts every request
        // (§2), so the crypto charge applies on all paths.
        Some(self.wire.decrypt_in_enclave(ctx, &msg))
    }

    /// Blocking receive: when the queue is empty, waits via repeated
    /// `poll()` OCALLs (the paper's split: short calls go exit-less,
    /// long blocking waits take the naive exit, §3.1) and then
    /// receives. On the native path it simply spins on `poll`.
    pub fn recv_msg_blocking(&self, ctx: &mut ThreadCtx) -> Vec<u8> {
        loop {
            if let Some(msg) = self.recv_msg(ctx) {
                return msg;
            }
            let fd = self.fd;
            let ready = match &self.path {
                IoPath::Native => {
                    let m = Arc::clone(&ctx.machine);
                    m.host.poll(ctx, fd)
                }
                // Both enclaved paths block via OCALL, per the paper.
                _ => ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.poll(c, fd)
                }),
            };
            if !ready {
                std::thread::yield_now();
            }
        }
    }

    /// Receives and decrypts up to `max` requests at once, in the
    /// socket's arrival order.
    ///
    /// On the RPC path all `recv` jobs are posted to the ring
    /// back-to-back as one batch (amortizing the handoff cost) into
    /// per-message stripes of the receive buffer; empty-queue slots
    /// are filtered out. With more than one RPC worker the jobs may
    /// *execute* out of submission order, so each descriptor carries
    /// the socket's dequeue sequence number (`RECV_TAGGED`) and the
    /// reap sorts by it before decrypting. On the native/OCALL paths
    /// this degrades to a sequential loop that stops at the first
    /// would-block.
    pub fn recv_batch(&self, ctx: &mut ThreadCtx, max: usize) -> Vec<Vec<u8>> {
        assert!(max > 0);
        let svc = match &self.path {
            IoPath::Rpc(svc) => svc,
            _ => {
                let mut out = Vec::new();
                while out.len() < max {
                    match self.recv_msg(ctx) {
                        Some(msg) => out.push(msg),
                        None => break,
                    }
                }
                return out;
            }
        };
        let stripe = self.buf_len / max;
        assert!(stripe > 0, "batch too large for the receive buffer");
        let reqs: Vec<(u64, [u64; 4])> = (0..max)
            .map(|i| {
                let addr = self.rx_buf + (i * stripe) as u64;
                (
                    funcs::RECV_TAGGED,
                    [self.fd.0 as u64, addr, stripe as u64, 0],
                )
            })
            .collect();
        let rets = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        // (seq, stripe index, len) for every slot that got a message.
        let mut got: Vec<(u64, usize, usize)> = rets
            .into_iter()
            .enumerate()
            .filter(|&(_, r)| r != u64::MAX)
            .map(|(i, r)| (r >> 32, i, (r & 0xffff_ffff) as usize))
            .collect();
        got.sort_unstable_by_key(|&(seq, _, _)| seq);
        let mut out = Vec::with_capacity(got.len());
        for (_seq, i, n) in got {
            let mut msg = vec![0u8; n];
            ctx.read_untrusted(self.rx_buf + (i * stripe) as u64, &mut msg);
            out.push(self.wire.decrypt_in_enclave(ctx, &msg));
        }
        out
    }

    /// Encrypts and sends a batch of responses.
    ///
    /// On the RPC path the `send` jobs go out as one batched
    /// submission from per-message stripes of the transmit buffer; on
    /// the other paths responses are sent one by one.
    pub fn send_batch(&self, ctx: &mut ThreadCtx, replies: &[Vec<u8>]) {
        if replies.is_empty() {
            return;
        }
        let svc = match &self.path {
            IoPath::Rpc(svc) => svc,
            _ => {
                for r in replies {
                    self.send_msg(ctx, r);
                }
                return;
            }
        };
        let stripe = self.buf_len / replies.len();
        let mut reqs = Vec::with_capacity(replies.len());
        for (i, plain) in replies.iter().enumerate() {
            let msg = self.wire.encrypt_in_enclave(ctx, plain);
            assert!(
                msg.len() <= stripe,
                "batched response exceeds its tx stripe"
            );
            let addr = self.tx_buf + (i * stripe) as u64;
            ctx.write_untrusted(addr, &msg);
            reqs.push((funcs::SEND, [self.fd.0 as u64, addr, msg.len() as u64, 0]));
        }
        svc.submit_batch(ctx, &reqs).wait_all(ctx);
    }

    /// Encrypts and sends one response.
    pub fn send_msg(&self, ctx: &mut ThreadCtx, plain: &[u8]) {
        let msg = self.wire.encrypt_in_enclave(ctx, plain);
        assert!(msg.len() <= self.buf_len, "response exceeds tx buffer");
        ctx.write_untrusted(self.tx_buf, &msg);
        let machine = Arc::clone(&ctx.machine);
        match &self.path {
            IoPath::Native => {
                machine.host.send(ctx, self.fd, self.tx_buf, msg.len());
            }
            IoPath::Ocall => {
                let fd = self.fd;
                let (tx, len) = (self.tx_buf, msg.len());
                ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.send(c, fd, tx, len)
                });
            }
            IoPath::Rpc(svc) => {
                svc.call(
                    ctx,
                    funcs::SEND,
                    [self.fd.0 as u64, self.tx_buf, msg.len() as u64, 0],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};
    use eleos_enclave::thread::ThreadCtx;

    #[test]
    fn blocking_recv_waits_for_a_producer() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Wire::new([2u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 64 << 10);
        let io = ServerIo::new(&ut, fd, 4096, IoPath::Ocall, Arc::clone(&wire));

        // A producer that delivers after a delay.
        let producer = {
            let m = Arc::clone(&m);
            let wire = Arc::clone(&wire);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let ut = ThreadCtx::untrusted(&m, 2);
                m.host.push_request(&ut, fd, &wire.encrypt(b"late arrival"));
            })
        };
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        let msg = io.recv_msg_blocking(&mut t);
        assert_eq!(msg, b"late arrival");
        // The wait took the OCALL path (poll syscalls with exits).
        let d = m.stats.snapshot() - s0;
        assert!(d.ocalls >= 1, "blocking wait must OCALL-poll");
        t.exit();
        producer.join().unwrap();
    }

    #[test]
    fn recv_batch_preserves_order_with_two_workers() {
        // Two RPC workers reap the batch concurrently, so the recv
        // jobs complete out of submission order; the sequence tags
        // must restore the socket's arrival order.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Wire::new([5u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let io = ServerIo::new(&ut, fd, 8192, IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for round in 0..4 {
            for i in 0..8u8 {
                let body = [round * 8 + i; 24];
                m.host.push_request(&ut, fd, &wire.encrypt(&body));
            }
            let msgs = io.recv_batch(&mut t, 8);
            assert_eq!(msgs.len(), 8);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(
                    msg,
                    &vec![round * 8 + i as u8; 24],
                    "message {i} of round {round} out of order"
                );
            }
        }
        t.exit();
    }
}
