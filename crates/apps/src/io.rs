//! Server-side network I/O over the three syscall paths the paper
//! compares: direct (native), OCALL (vanilla SGX SDK / Graphene), and
//! Eleos exit-less RPC.
//!
//! All receive entry points funnel through one reap/sort/decrypt
//! helper: the path-specific code only collects *raw* wire messages in
//! the socket's arrival order, and the whole batch is then decrypted in
//! a single [`Wire::decrypt_batch_in_enclave`] pass (the batched crypto
//! pipeline). `recv_msg` is literally a batch of one. Batch size and
//! crypto amortization are session configuration ([`ServerIoConfig`]),
//! not per-call arguments.
//!
//! On the RPC path the reap is split into one scatter-gather
//! `recvmmsg`/`sendmmsg`-style *sub-batch* per worker — one syscall
//! and one kernel-metadata charge per sub-batch instead of per
//! message — and the sub-batches execute in parallel across the
//! workers. Each descriptor carries the socket's dequeue sequence, so
//! the reap merges the sub-batches back into global arrival order by
//! a seq sort (the multi-worker generalization of the `RECV_TAGGED`
//! merge). The per-message path survives behind
//! [`ServerIoConfig::scatter_gather`]`(false)` as the baseline
//! `repro crypto_bench` compares against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eleos_enclave::host::Fd;
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{funcs, RpcService};

use crate::wire::Wire;

/// How the server reaches the host OS.
#[derive(Clone)]
pub enum IoPath {
    /// Direct syscalls from untrusted code (the no-SGX baseline).
    Native,
    /// OCALL per syscall (vanilla SGX; also our stand-in for
    /// Graphene's exit path, §5.1).
    Ocall,
    /// Eleos exit-less RPC (§3.1).
    Rpc(Arc<RpcService>),
}

impl IoPath {
    /// Label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IoPath::Native => "native",
            IoPath::Ocall => "ocall",
            IoPath::Rpc(_) => "rpc",
        }
    }
}

/// Session tunables for a [`ServerIo`] connection.
#[derive(Clone, Debug)]
pub struct ServerIoConfig {
    /// Size of each untrusted staging buffer (receive and transmit).
    pub buf_len: usize,
    /// Messages reaped/sent per batch call; the receive buffer is
    /// striped into this many slots, so `buf_len / batch` bounds the
    /// message size.
    pub batch: usize,
    /// Amortize the cipher setup across each batch (the batched
    /// crypto pipeline). `false` charges every message the full setup
    /// — the per-message baseline `repro crypto_bench` compares
    /// against. Wire bytes are identical either way.
    pub batched_crypto: bool,
    /// Defer reaping the scatter-gather send until the next batch
    /// (double-buffered transmit): the workers execute the send
    /// sub-batches while the serving core receives and processes the
    /// following batch, so the overlap-aware wait usually charges
    /// nothing. Responses still go out in order (transmit sequences in
    /// the descriptors commit through the kernel reorder buffer), but
    /// a caller that stops serving must [`ServerIo::flush`] to reap
    /// the last one. Only engages on the RPC scatter-gather path.
    pub async_send: bool,
    /// Use scatter-gather `recv_mmsg`/`send_mmsg` sub-batches (one per
    /// worker) on the RPC path — one syscall trap and one
    /// kernel-metadata charge per sub-batch (default). `false` falls
    /// back to per-message `RECV_TAGGED`/`SEND` jobs, the baseline
    /// `repro crypto_bench`'s `io=per-msg` cells measure.
    pub scatter_gather: bool,
}

impl Default for ServerIoConfig {
    fn default() -> Self {
        Self {
            buf_len: 64 << 10,
            batch: 16,
            batched_crypto: true,
            async_send: false,
            scatter_gather: true,
        }
    }
}

impl ServerIoConfig {
    /// The default session config with a specific staging-buffer size.
    #[must_use]
    pub fn with_buf_len(buf_len: usize) -> Self {
        Self {
            buf_len,
            ..Self::default()
        }
    }

    /// Sets the per-call batch size.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be at least one");
        self.batch = batch;
        self
    }

    /// Enables or disables batch-amortized crypto setup.
    #[must_use]
    pub fn batched_crypto(mut self, on: bool) -> Self {
        self.batched_crypto = on;
        self
    }

    /// Enables or disables double-buffered (deferred-reap) sends.
    #[must_use]
    pub fn async_send(mut self, on: bool) -> Self {
        self.async_send = on;
        self
    }

    /// Enables or disables scatter-gather sub-batch I/O on the RPC
    /// path.
    #[must_use]
    pub fn scatter_gather(mut self, on: bool) -> Self {
        self.scatter_gather = on;
        self
    }

    /// Label for the I/O submission mode in experiment output.
    #[must_use]
    pub fn io_label(&self) -> &'static str {
        if self.scatter_gather {
            "sg"
        } else {
            "per-msg"
        }
    }

    /// Label for experiment output (mirrors how the paging benches
    /// name the eviction policy).
    #[must_use]
    pub fn crypto_label(&self) -> &'static str {
        if self.batched_crypto {
            "batched"
        } else {
            "per-msg"
        }
    }
}

/// One server connection: a socket plus untrusted staging buffers and
/// the session cipher.
pub struct ServerIo {
    /// The socket.
    pub fd: Fd,
    /// Untrusted receive buffer.
    pub rx_buf: u64,
    /// Untrusted transmit buffer.
    pub tx_buf: u64,
    /// Untrusted descriptor array for scatter-gather receives: `batch`
    /// little-endian `u64`s of `(seq << 32) | len`, like `recvmmsg`'s
    /// msgvec plus the socket's dequeue sequence.
    desc_rx: u64,
    /// Untrusted descriptor array for scatter-gather sends (same
    /// `(seq << 32) | len` format; `seq` is the transmit sequence the
    /// kernel reorder buffer commits in order).
    desc_tx: u64,
    /// Next transmit sequence number for sequenced scatter-gather
    /// sends. The host commits payloads to the wire strictly in this
    /// order, so parallel send sub-batches cannot reorder responses.
    tx_seq: AtomicU64,
    /// The in-flight deferred send, when `cfg.async_send` is on: the
    /// transmit buffer belongs to the workers until this is reaped.
    pending_send: std::sync::Mutex<Option<eleos_rpc::RpcBatch>>,
    /// Session tunables.
    pub cfg: ServerIoConfig,
    /// Syscall mechanism.
    pub path: IoPath,
    /// Session cipher.
    pub wire: Arc<Wire>,
}

impl ServerIo {
    /// Allocates staging buffers per `cfg` and binds them to `fd`.
    #[must_use]
    pub fn new(
        ctx: &ThreadCtx,
        fd: Fd,
        cfg: ServerIoConfig,
        path: IoPath,
        wire: Arc<Wire>,
    ) -> Self {
        let descs = cfg.batch * 8;
        Self {
            fd,
            rx_buf: ctx.machine.alloc_untrusted(cfg.buf_len),
            tx_buf: ctx.machine.alloc_untrusted(cfg.buf_len),
            desc_rx: ctx.machine.alloc_untrusted(descs),
            desc_tx: ctx.machine.alloc_untrusted(descs),
            tx_seq: AtomicU64::new(0),
            pending_send: std::sync::Mutex::new(None),
            cfg,
            path,
            wire,
        }
    }

    /// Receives and decrypts one request: a batch of one over the
    /// shared reap path. Returns `None` when the socket queue is
    /// empty.
    pub fn recv_msg(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        self.recv_up_to(ctx, 1).pop()
    }

    /// Receives and decrypts up to `cfg.batch` requests at once, in
    /// the socket's arrival order, decrypting the whole reap in one
    /// batched crypto pass.
    pub fn recv_batch(&self, ctx: &mut ThreadCtx) -> Vec<Vec<u8>> {
        self.recv_up_to(ctx, self.cfg.batch)
    }

    /// The shared reap/sort/decrypt path behind every receive entry
    /// point: collect up to `max` raw messages in arrival order, then
    /// decrypt them all in one [`Wire::decrypt_batch_in_enclave`]
    /// pass.
    ///
    /// The paper's untrusted baseline also decrypts every request
    /// (§2), so the crypto charge applies on all paths.
    fn recv_up_to(&self, ctx: &mut ThreadCtx, max: usize) -> Vec<Vec<u8>> {
        assert!(max > 0);
        let raw = self.reap_raw(ctx, max);
        if raw.is_empty() {
            return Vec::new();
        }
        let refs: Vec<&[u8]> = raw.iter().map(Vec::as_slice).collect();
        self.wire
            .decrypt_batch_in_enclave(ctx, &refs, self.cfg.batched_crypto)
    }

    /// Collects up to `max` raw wire messages in the socket's arrival
    /// order, without decrypting.
    ///
    /// On the RPC scatter-gather path the reap is split into one
    /// `recvmmsg`-style sub-batch per worker — contiguous stripe
    /// ranges of the receive buffer, submitted together as one RPC
    /// batch. Each sub-batch costs one syscall and one kernel-metadata
    /// charge regardless of how many messages it pops, and the
    /// sub-batches drain the socket concurrently, so their slots
    /// interleave; every descriptor carries the socket's dequeue
    /// sequence and the reap merges by a global seq sort. A single
    /// worker degenerates to the one-job scatter-gather reap. With
    /// `scatter_gather` off the reap falls back to per-message
    /// `RECV_TAGGED` jobs (same seq-sorted merge, one syscall *per
    /// message*). On the native/OCALL paths this degrades to a
    /// sequential loop that stops at the first would-block.
    fn reap_raw(&self, ctx: &mut ThreadCtx, max: usize) -> Vec<Vec<u8>> {
        let svc = match &self.path {
            IoPath::Rpc(svc) => svc,
            _ => {
                let mut out = Vec::new();
                while out.len() < max {
                    match self.recv_raw(ctx) {
                        Some(msg) => out.push(msg),
                        None => break,
                    }
                }
                return out;
            }
        };
        let stripe = self.cfg.buf_len / max;
        assert!(stripe > 0, "batch too large for the receive buffer");
        if self.cfg.scatter_gather {
            let ranges = split_ranges(max, svc.worker_count().max(1));
            let reqs: Vec<(u64, [u64; 4])> = ranges
                .iter()
                .map(|&(start, count)| {
                    (
                        funcs::RECV_MMSG,
                        [
                            self.fd.0 as u64,
                            self.rx_buf + (start * stripe) as u64,
                            ((stripe as u64) << 32) | count as u64,
                            self.desc_rx + (start * 8) as u64,
                        ],
                    )
                })
                .collect();
            let counts = svc.submit_batch(ctx, &reqs).wait_all(ctx);
            // (seq, slot, len) across all sub-batches: sub-batches pop
            // concurrently, so arrival order is reconstructed from the
            // dequeue sequences, not the slot layout.
            let mut got: Vec<(u64, usize, usize)> = Vec::new();
            for (&(start, _), &n) in ranges.iter().zip(counts.iter()) {
                let n = n as usize;
                if n == 0 {
                    continue;
                }
                let mut descs = vec![0u8; n * 8];
                ctx.read_untrusted(self.desc_rx + (start * 8) as u64, &mut descs);
                for i in 0..n {
                    let d = u64::from_le_bytes(descs[i * 8..i * 8 + 8].try_into().unwrap());
                    got.push((d >> 32, start + i, (d & 0xffff_ffff) as usize));
                }
            }
            got.sort_unstable_by_key(|&(seq, _, _)| seq);
            let mut out = Vec::with_capacity(got.len());
            for (_seq, slot, n) in got {
                let mut msg = vec![0u8; n];
                ctx.read_untrusted(self.rx_buf + (slot * stripe) as u64, &mut msg);
                out.push(msg);
            }
            return out;
        }
        let reqs: Vec<(u64, [u64; 4])> = (0..max)
            .map(|i| {
                let addr = self.rx_buf + (i * stripe) as u64;
                (
                    funcs::RECV_TAGGED,
                    [self.fd.0 as u64, addr, stripe as u64, 0],
                )
            })
            .collect();
        let rets = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        // (seq, stripe index, len) for every slot that got a message.
        let mut got: Vec<(u64, usize, usize)> = rets
            .into_iter()
            .enumerate()
            .filter(|&(_, r)| r != u64::MAX)
            .map(|(i, r)| (r >> 32, i, (r & 0xffff_ffff) as usize))
            .collect();
        got.sort_unstable_by_key(|&(seq, _, _)| seq);
        let mut out = Vec::with_capacity(got.len());
        for (_seq, i, n) in got {
            let mut msg = vec![0u8; n];
            ctx.read_untrusted(self.rx_buf + (i * stripe) as u64, &mut msg);
            out.push(msg);
        }
        out
    }

    /// One raw receive on the non-RPC paths. Returns `None` when the
    /// socket queue is empty.
    fn recv_raw(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        let machine = Arc::clone(&ctx.machine);
        let n = match &self.path {
            IoPath::Native => {
                assert!(!ctx.in_enclave(), "native path runs untrusted");
                machine
                    .host
                    .recv(ctx, self.fd, self.rx_buf, self.cfg.buf_len)?
            }
            IoPath::Ocall => {
                let fd = self.fd;
                let (rx, len) = (self.rx_buf, self.cfg.buf_len);
                let r = ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.recv(c, fd, rx, len)
                });
                r?
            }
            IoPath::Rpc(_) => unreachable!("the RPC path reaps through the ring"),
        };
        let mut msg = vec![0u8; n];
        ctx.read_untrusted(self.rx_buf, &mut msg);
        Some(msg)
    }

    /// Blocking receive: when the queue is empty, waits via repeated
    /// `poll()` OCALLs (the paper's split: short calls go exit-less,
    /// long blocking waits take the naive exit, §3.1) and then
    /// receives. On the native path it simply spins on `poll`.
    pub fn recv_msg_blocking(&self, ctx: &mut ThreadCtx) -> Vec<u8> {
        loop {
            if let Some(msg) = self.recv_msg(ctx) {
                return msg;
            }
            let fd = self.fd;
            let ready = match &self.path {
                IoPath::Native => {
                    let m = Arc::clone(&ctx.machine);
                    m.host.poll(ctx, fd)
                }
                // Both enclaved paths block via OCALL, per the paper.
                _ => ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.poll(c, fd)
                }),
            };
            if !ready {
                std::thread::yield_now();
            }
        }
    }

    /// Encrypts and sends a batch of responses, sealing them all in
    /// one batched crypto pass.
    ///
    /// On the RPC path the `send` jobs go out as one batched
    /// submission from per-message stripes of the transmit buffer; on
    /// the other paths responses are sent one by one (but still
    /// encrypted as a batch).
    pub fn send_batch(&self, ctx: &mut ThreadCtx, replies: &[Vec<u8>]) {
        let refs: Vec<&[u8]> = replies.iter().map(Vec::as_slice).collect();
        self.send_all(ctx, &refs);
    }

    /// Encrypts and sends one response: a batch of one.
    pub fn send_msg(&self, ctx: &mut ThreadCtx, plain: &[u8]) {
        self.send_all(ctx, &[plain]);
    }

    /// Reaps the deferred send, if one is in flight. The overlap-aware
    /// wait charges only worker time the serving core has not already
    /// covered with its own progress — in steady state, nothing.
    pub fn flush(&self, ctx: &mut ThreadCtx) {
        if let Some(batch) = self.pending_send.lock().expect("pending send").take() {
            batch.wait_all(ctx);
        }
    }

    /// The shared encrypt/stage/send path behind every send entry
    /// point.
    fn send_all(&self, ctx: &mut ThreadCtx, replies: &[&[u8]]) {
        if replies.is_empty() {
            return;
        }
        let msgs = self
            .wire
            .encrypt_batch_in_enclave(ctx, replies, self.cfg.batched_crypto);
        let stripe = self.cfg.buf_len / msgs.len();
        if let IoPath::Rpc(svc) = &self.path {
            // The transmit buffer may still belong to a deferred send.
            self.flush(ctx);
            // Mirror of the receive side: one sendmmsg-style
            // scatter-gather sub-batch per worker (one syscall and one
            // kernel-metadata charge each), executing in parallel. The
            // descriptors carry transmit sequences, so the kernel
            // reorder buffer commits the responses to the wire in
            // order no matter which worker runs which sub-batch.
            if self.cfg.scatter_gather && msgs.len() <= self.cfg.batch {
                let seq0 = self.tx_seq.fetch_add(msgs.len() as u64, Ordering::Relaxed);
                let mut descs = Vec::with_capacity(msgs.len() * 8);
                for (i, msg) in msgs.iter().enumerate() {
                    assert!(
                        msg.len() <= stripe,
                        "batched response exceeds its tx stripe"
                    );
                    ctx.write_untrusted(self.tx_buf + (i * stripe) as u64, msg);
                    let d = ((seq0 + i as u64) << 32) | msg.len() as u64;
                    descs.extend_from_slice(&d.to_le_bytes());
                }
                ctx.write_untrusted(self.desc_tx, &descs);
                let ranges = split_ranges(msgs.len(), svc.worker_count().max(1));
                let reqs: Vec<(u64, [u64; 4])> = ranges
                    .iter()
                    .map(|&(start, count)| {
                        (
                            funcs::SEND_MMSG,
                            [
                                self.fd.0 as u64,
                                self.tx_buf + (start * stripe) as u64,
                                ((stripe as u64) << 32) | count as u64,
                                self.desc_tx + (start * 8) as u64,
                            ],
                        )
                    })
                    .collect();
                let batch = svc.submit_batch(ctx, &reqs);
                if self.cfg.async_send {
                    *self.pending_send.lock().expect("pending send") = Some(batch);
                } else {
                    batch.wait_all(ctx);
                }
                return;
            }
            let mut reqs = Vec::with_capacity(msgs.len());
            for (i, msg) in msgs.iter().enumerate() {
                assert!(
                    msg.len() <= stripe,
                    "batched response exceeds its tx stripe"
                );
                let addr = self.tx_buf + (i * stripe) as u64;
                ctx.write_untrusted(addr, msg);
                reqs.push((funcs::SEND, [self.fd.0 as u64, addr, msg.len() as u64, 0]));
            }
            svc.submit_batch(ctx, &reqs).wait_all(ctx);
            return;
        }
        let machine = Arc::clone(&ctx.machine);
        for (i, msg) in msgs.iter().enumerate() {
            assert!(
                msg.len() <= stripe,
                "batched response exceeds its tx stripe"
            );
            let addr = self.tx_buf + (i * stripe) as u64;
            ctx.write_untrusted(addr, msg);
            match &self.path {
                IoPath::Native => {
                    machine.host.send(ctx, self.fd, addr, msg.len());
                }
                IoPath::Ocall => {
                    let fd = self.fd;
                    let len = msg.len();
                    ctx.ocall(move |c| {
                        let m = Arc::clone(&c.machine);
                        m.host.send(c, fd, addr, len)
                    });
                }
                IoPath::Rpc(_) => unreachable!("handled above"),
            }
        }
    }
}

/// Splits `total` slots into up to `parts` contiguous `(start, count)`
/// ranges — one scatter-gather sub-batch per worker. The first
/// `total % parts` ranges take the extra slot, so sub-batch sizes
/// differ by at most one and every slot is covered exactly once.
fn split_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, total.max(1));
    let (base, rem) = (total / parts, total % parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for j in 0..parts {
        let count = base + usize::from(j < rem);
        if count == 0 {
            break;
        }
        ranges.push((start, count));
        start += count;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};
    use eleos_enclave::thread::ThreadCtx;

    #[test]
    fn split_ranges_covers_every_slot_once() {
        for total in 1..=65usize {
            for parts in 1..=8usize {
                let ranges = split_ranges(total, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for &(start, count) in &ranges {
                    assert_eq!(start, next, "ranges must be contiguous");
                    assert!(count > 0);
                    next += count;
                }
                assert_eq!(next, total, "every slot covered exactly once");
                let max = ranges.iter().map(|r| r.1).max().unwrap();
                let min = ranges.iter().map(|r| r.1).min().unwrap();
                assert!(max - min <= 1, "sub-batches differ by at most one");
            }
        }
    }

    #[test]
    fn blocking_recv_waits_for_a_producer() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Wire::new([2u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 64 << 10);
        let io = ServerIo::new(
            &ut,
            fd,
            ServerIoConfig::with_buf_len(4096),
            IoPath::Ocall,
            Arc::clone(&wire),
        );

        // A producer that delivers after a delay.
        let producer = {
            let m = Arc::clone(&m);
            let wire = Arc::clone(&wire);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let ut = ThreadCtx::untrusted(&m, 2);
                m.host.push_request(&ut, fd, &wire.encrypt(b"late arrival"));
            })
        };
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        let msg = io.recv_msg_blocking(&mut t);
        assert_eq!(msg, b"late arrival");
        // The wait took the OCALL path (poll syscalls with exits).
        let d = m.stats.snapshot() - s0;
        assert!(d.ocalls >= 1, "blocking wait must OCALL-poll");
        t.exit();
        producer.join().unwrap();
    }

    #[test]
    fn recv_batch_preserves_order_with_two_workers() {
        // Two RPC workers reap the batch concurrently, so the recv
        // jobs complete out of submission order; the sequence tags
        // must restore the socket's arrival order through the shared
        // reap/sort/decrypt path.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Wire::new([5u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let io = ServerIo::new(
            &ut,
            fd,
            ServerIoConfig::with_buf_len(8192).batch(8),
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for round in 0..4 {
            for i in 0..8u8 {
                let body = [round * 8 + i; 24];
                m.host.push_request(&ut, fd, &wire.encrypt(&body));
            }
            let msgs = io.recv_batch(&mut t);
            assert_eq!(msgs.len(), 8);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(
                    msg,
                    &vec![round * 8 + i as u8; 24],
                    "message {i} of round {round} out of order"
                );
            }
        }
        t.exit();
    }

    #[test]
    fn batched_crypto_saves_serving_cycles_for_the_same_bytes() {
        // The same reap costs fewer serving-core cycles with the
        // batched crypto pipeline, and the plaintexts are identical.
        let run = |batched: bool| {
            // A fresh machine per mode so cache state from the first
            // run cannot skew the second.
            let m = SgxMachine::new(MachineConfig::tiny());
            let e = m.driver.create_enclave(&m, 1 << 20);
            let wire = Arc::new(Wire::new([6u8; 16]));
            let ut = ThreadCtx::untrusted(&m, 2);
            let fd = m.host.socket(&ut, 64 << 10);
            let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
                .workers(1, &[3])
                .build();
            let io = ServerIo::new(
                &ut,
                fd,
                ServerIoConfig::with_buf_len(8192)
                    .batch(8)
                    .batched_crypto(batched),
                IoPath::Rpc(Arc::new(svc)),
                Arc::clone(&wire),
            );
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            for i in 0..8u8 {
                m.host.push_request(&ut, fd, &wire.encrypt(&[i; 24]));
            }
            let c0 = t.now();
            let msgs = io.recv_batch(&mut t);
            let cycles = t.now() - c0;
            t.exit();
            (msgs, cycles)
        };
        let (per_msg, c_per) = run(false);
        let (batched, c_batched) = run(true);
        assert_eq!(per_msg, batched, "crypto mode must not change bytes");
        let full = MachineConfig::tiny().costs.crypto_fixed;
        assert_eq!(c_per - c_batched, 7 * (full - full / 4));
    }

    #[test]
    fn deferred_send_keeps_order_and_hides_the_executor() {
        // With `async_send` the scatter-gather send is reaped on the
        // *next* batch: the bytes must still reach the socket in
        // order, and the serving core must pay less than a
        // synchronous echo loop — the worker's syscall executor runs
        // under the next batch's receive and process time.
        let run = |deferred: bool| {
            let m = SgxMachine::new(MachineConfig::tiny());
            let e = m.driver.create_enclave(&m, 1 << 20);
            let wire = Arc::new(Wire::new([7u8; 16]));
            let ut = ThreadCtx::untrusted(&m, 2);
            let fd = m.host.socket(&ut, 64 << 10);
            let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
                .workers(1, &[3])
                .build();
            let io = ServerIo::new(
                &ut,
                fd,
                ServerIoConfig::with_buf_len(8192)
                    .batch(4)
                    .async_send(deferred),
                IoPath::Rpc(Arc::new(svc)),
                Arc::clone(&wire),
            );
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            let c0 = t.now();
            for round in 0..4u8 {
                for i in 0..4u8 {
                    let body = [round * 4 + i; 24];
                    m.host.push_request(&ut, fd, &wire.encrypt(&body));
                }
                let msgs = io.recv_batch(&mut t);
                assert_eq!(msgs.len(), 4);
                io.send_batch(&mut t, &msgs);
            }
            io.flush(&mut t);
            let cycles = t.now() - c0;
            t.exit();
            let mut echoed = Vec::new();
            while let Some(resp) = m.host.pop_response(fd) {
                echoed.push(wire.decrypt(&resp));
            }
            (echoed, cycles)
        };
        let (sync_out, c_sync) = run(false);
        let (deferred_out, c_deferred) = run(true);
        assert_eq!(sync_out.len(), 16, "every echo must reach the socket");
        assert_eq!(sync_out, deferred_out, "deferred sends must stay in order");
        for (i, msg) in deferred_out.iter().enumerate() {
            assert_eq!(msg, &vec![i as u8; 24]);
        }
        assert!(
            c_deferred < c_sync,
            "deferred reap must hide executor time ({c_deferred} !< {c_sync})"
        );
    }
}
