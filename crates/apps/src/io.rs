//! Server-side network I/O over the three syscall paths the paper
//! compares: direct (native), OCALL (vanilla SGX SDK / Graphene), and
//! Eleos exit-less RPC.
//!
//! All receive entry points funnel through one reap/sort/decrypt
//! helper: the path-specific code only collects *raw* wire messages in
//! the socket's arrival order, and the whole batch is then decrypted in
//! a single [`Session::decrypt_batch_in_enclave`] pass (the batched
//! crypto pipeline). `recv_msg` is literally a batch of one. Batch
//! size and crypto amortization are session configuration
//! ([`ServerIoConfig`]), not per-call arguments.
//!
//! Every `ServerIo` is built through exactly one entry point,
//! [`ServerIoConfig::build`], which wires the staging buffers, the
//! optional shard map ([`ServerIoConfig::routed`]), and the wire
//! [`Session`] together.
//!
//! On the RPC path the reap is split into one scatter-gather
//! `recvmmsg`/`sendmmsg`-style *sub-batch* per worker — one syscall
//! and one kernel-metadata charge per sub-batch instead of per
//! message — and the sub-batches execute in parallel across the
//! workers. Each descriptor carries the socket's dequeue sequence, so
//! the reap merges the sub-batches back into global arrival order by
//! a seq sort (the multi-worker generalization of the `RECV_TAGGED`
//! merge). The per-message path survives behind
//! [`ServerIoConfig::scatter_gather`]`(false)` as the baseline
//! `repro crypto_bench` compares against.
//!
//! # Sharded multi-socket serving
//!
//! A [`ServerIo`] built over a socket *set* (one socket per shard,
//! SO_REUSEPORT style) runs one
//! reap→decrypt→serve→seal→send pipeline per shard instead. Because
//! the load generator pins each client connection to one shard
//! ([`crate::loadgen::shard_for`]), per-shard slot order *is* arrival
//! order: the sharded reap skips the global seq-sort merge (and its
//! [`reap_merge`](eleos_sim::costs::CostModel::reap_merge) charge) and
//! the sharded send uses unsequenced `send_mmsg`, skipping the kernel
//! transmit reorder buffer (and its
//! [`tx_reorder`](eleos_sim::costs::CostModel::tx_reorder) charge).
//! The single-socket path keeps both, unchanged — per-connection
//! response order is the only contract, and one socket carries every
//! connection.
//!
//! # Adaptive sub-batch sizing
//!
//! [`ServerIoConfig::adaptive`] replaces the fixed reap depth with a
//! per-shard AIMD controller: grow the depth while the queue stays
//! non-empty (burst → batch-`max` amortization), halve it on an empty
//! reap, and otherwise track an EWMA of arrivals (trickle →
//! batch-`min` latency). Every scatter-gather descriptor carries the
//! op's enqueue timestamp, and the reap records each op's
//! cycles-of-sojourn into the [`sojourn`](eleos_sim::stats::Stats)
//! histogram, so `repro serving_bench` can report p50/p95/p99 latency
//! next to throughput.
//!
//! # Shard balance (re-pinning and work stealing)
//!
//! Static connection pinning leaves sockets idle under skew: a Zipf
//! load parks most arrivals on one shard while its siblings poll
//! empty queues. [`ServerIoConfig::balanced`] (with the map wired via
//! [`ServerIoConfig::routed`]) layers two remedies over the sharded
//! pipeline, both operating only at *sub-batch boundaries* so
//! per-connection arrival order stays a per-socket FIFO property:
//!
//! - **Hot-connection re-pinning** ([`BalanceConfig::repin`]): every
//!   [`BalanceConfig::period`] reaps the server compares per-shard
//!   residual backlog (falling back to the shard map's arrival
//!   weights when every queue drained) and re-pins up to
//!   [`BalanceConfig::max_moves`] of the hottest shard's heaviest
//!   connections onto the coldest shard via the
//!   [`crate::loadgen::ShardMap`] indirection. Only *future*
//!   arrivals move; queued messages stay where the kernel has them.
//! - **Sub-batch work stealing** ([`BalanceConfig::steal`]): a shard
//!   whose reap came back empty steals one `recv_mmsg` sub-batch
//!   from the sibling with the deepest residual backlog. `recv_mmsg`
//!   pops the queue front atomically, so the stolen run is the
//!   victim's *oldest contiguous* run; its replies are staged in the
//!   thief's buffers but transmitted out the victim's socket, after
//!   the victim's own replies (a second send wave), so the wire
//!   order is untouched.
//!
//! Per-shard backlog/depth gauges, steal and migration counts, and
//! per-shard sojourn histograms land in
//! [`ShardStats`](eleos_sim::stats::ShardStats) for
//! `repro serving_bench` to report.
//!
//! # Fence-integrated key rotation
//!
//! With [`ServerIoConfig::rekey_every`] the server counts decrypted
//! requests and, at the head of the next reap fence after the
//! interval elapses, rotates the wire [`Session`]'s key epoch
//! ([`Session::begin_rekey`]). The fence is the same sub-batch
//! boundary the steal/rebalance/failover machinery uses — the only
//! point where the pipeline holds no half-served requests — and the
//! rotation itself is double-buffered inside the session, so the
//! serving path never stalls: in-flight old-epoch messages keep
//! draining while new arrivals seal under the new epoch.
//! [`ServerIo::revoke`] is the terminal fence: it revokes the session
//! and drains every queued message off the shard sockets, dropped and
//! counted instead of served.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eleos_enclave::host::{Fd, DESC_STRIDE};
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{funcs, RpcService};
use eleos_sim::stats::{Stats, MAX_REPLICAS, MAX_SHARDS};

use crate::loadgen::ShardMap;
use crate::wire::{Session, SessionState};

/// Fixed-point scale for the per-shard arrival-rate EWMA.
const EWMA_SCALE: u64 = 16;

/// How the server reaches the host OS.
#[derive(Clone)]
pub enum IoPath {
    /// Direct syscalls from untrusted code (the no-SGX baseline).
    Native,
    /// OCALL per syscall (vanilla SGX; also our stand-in for
    /// Graphene's exit path, §5.1).
    Ocall,
    /// Eleos exit-less RPC (§3.1).
    Rpc(Arc<RpcService>),
}

impl IoPath {
    /// Label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IoPath::Native => "native",
            IoPath::Ocall => "ocall",
            IoPath::Rpc(_) => "rpc",
        }
    }
}

/// Tunables for the shard balance layer (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct BalanceConfig {
    /// Periodically re-pin the hottest shard's heaviest connections
    /// onto the coldest shard (needs a
    /// [`ShardMap`][crate::loadgen::ShardMap], i.e.
    /// [`ServerIo::sharded_balanced`]).
    pub repin: bool,
    /// Let an idle shard steal one `recv_mmsg` sub-batch from the
    /// sibling with the deepest residual backlog.
    pub steal: bool,
    /// Reaps between rebalance decisions. The fence between
    /// decisions is what keeps migrations cheap: the map only
    /// changes at sub-batch boundaries.
    pub period: usize,
    /// Connections re-pinned per rebalance decision.
    pub max_moves: usize,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        Self {
            repin: true,
            steal: true,
            period: 4,
            max_moves: 2,
        }
    }
}

/// Session tunables for a [`ServerIo`] connection.
#[derive(Clone)]
pub struct ServerIoConfig {
    /// Size of each untrusted staging buffer (receive and transmit).
    pub buf_len: usize,
    /// Messages reaped/sent per batch call; the receive buffer is
    /// striped into this many slots, so `buf_len / batch` bounds the
    /// message size. With [`Self::adaptive`] this is the *initial*
    /// depth and the controller moves within
    /// `[batch_min, batch_max]`.
    pub batch: usize,
    /// Lower bound for the adaptive sub-batch controller. Equal to
    /// `batch_max` (and `batch`) when the depth is fixed.
    pub batch_min: usize,
    /// Upper bound for the adaptive sub-batch controller; also sizes
    /// the descriptor staging and the sharded stripe. Equal to
    /// `batch_min` when the depth is fixed.
    pub batch_max: usize,
    /// Amortize the cipher setup across each batch (the batched
    /// crypto pipeline). `false` charges every message the full setup
    /// — the per-message baseline `repro crypto_bench` compares
    /// against. Wire bytes are identical either way.
    pub batched_crypto: bool,
    /// Defer reaping the scatter-gather send until the next batch
    /// (double-buffered transmit): the workers execute the send
    /// sub-batches while the serving core receives and processes the
    /// following batch, so the overlap-aware wait usually charges
    /// nothing. Responses still go out in order (transmit sequences in
    /// the descriptors commit through the kernel reorder buffer), but
    /// a caller that stops serving must [`ServerIo::flush`] to reap
    /// the last one. Only engages on the RPC scatter-gather path.
    pub async_send: bool,
    /// Use scatter-gather `recv_mmsg`/`send_mmsg` sub-batches (one per
    /// worker) on the RPC path — one syscall trap and one
    /// kernel-metadata charge per sub-batch (default). `false` falls
    /// back to per-message `RECV_TAGGED`/`SEND` jobs, the baseline
    /// `repro crypto_bench`'s `io=per-msg` cells measure.
    pub scatter_gather: bool,
    /// Declared shard count, validated against the socket set at
    /// construction ([`Self::shards`]). `None` accepts any set size.
    pub shards: Option<usize>,
    /// The shard balance layer ([`Self::balanced`]); `None` keeps the
    /// static pipeline bit-for-bit.
    pub balance: Option<BalanceConfig>,
    /// Which replica's per-shard stat gauges this session writes
    /// ([`Self::replica`]). A fleet gives each replica's pipeline its
    /// own slot so their backlog/steal/sojourn gauges stay apart;
    /// single-enclave servers keep the default slot 0.
    pub replica: usize,
    /// Rotate the wire session's key epoch after this many decrypted
    /// requests ([`Self::rekey_every`]); `None` never rotates. The
    /// rotation fires at the head of a reap fence and is
    /// double-buffered inside the [`Session`], so it never stalls the
    /// serving path.
    pub rekey_interval: Option<u64>,
    /// The balance layer's connection→shard indirection
    /// ([`Self::routed`]): the load generator routes arrivals through
    /// it and the rebalancer re-pins through the same map, so both
    /// sides always agree on where a connection lives. Validated
    /// against the socket set at [`Self::build`] time.
    map: Option<Arc<ShardMap>>,
}

impl std::fmt::Debug for ServerIoConfig {
    // Hand-written because `ShardMap` (interior-mutable routing state)
    // is deliberately not `Debug`; the config prints whether a map is
    // wired, not its contents.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerIoConfig")
            .field("buf_len", &self.buf_len)
            .field("batch", &self.batch)
            .field("batch_min", &self.batch_min)
            .field("batch_max", &self.batch_max)
            .field("batched_crypto", &self.batched_crypto)
            .field("async_send", &self.async_send)
            .field("scatter_gather", &self.scatter_gather)
            .field("shards", &self.shards)
            .field("balance", &self.balance)
            .field("replica", &self.replica)
            .field("rekey_interval", &self.rekey_interval)
            .field("routed", &self.map.is_some())
            .finish()
    }
}

impl Default for ServerIoConfig {
    fn default() -> Self {
        Self {
            buf_len: 64 << 10,
            batch: 16,
            batch_min: 16,
            batch_max: 16,
            batched_crypto: true,
            async_send: false,
            scatter_gather: true,
            shards: None,
            balance: None,
            replica: 0,
            rekey_interval: None,
            map: None,
        }
    }
}

impl ServerIoConfig {
    /// The default session config with a specific staging-buffer size.
    #[must_use]
    pub fn with_buf_len(buf_len: usize) -> Self {
        Self {
            buf_len,
            ..Self::default()
        }
    }

    /// Sets a fixed per-call batch size (`batch_min == batch_max`, no
    /// adaptation).
    ///
    /// # Panics
    /// Panics if `batch` is zero — a zero depth would divide the
    /// staging buffer by zero deep in the reap path.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(
            batch > 0,
            "batch(0): a reap needs at least one slot (the stripe size is buf_len / batch)"
        );
        self.batch = batch;
        self.batch_min = batch;
        self.batch_max = batch;
        self
    }

    /// Enables the adaptive sub-batch controller: each reap picks the
    /// next depth in `[min, max]` from the shard's observed queue
    /// depth (AIMD: grow while the queue stays non-empty, halve on an
    /// empty reap, otherwise track the arrival EWMA). `min == max`
    /// degenerates to a fixed depth.
    ///
    /// # Panics
    /// Panics if `min` is zero or `min > max`.
    #[must_use]
    pub fn adaptive(mut self, min: usize, max: usize) -> Self {
        assert!(
            min > 0,
            "adaptive({min}, {max}): batch_min must be at least one"
        );
        assert!(
            min <= max,
            "adaptive({min}, {max}): batch_min must not exceed batch_max"
        );
        self.batch = min;
        self.batch_min = min;
        self.batch_max = max;
        self
    }

    /// Whether the sub-batch depth adapts (i.e. `batch_min !=
    /// batch_max`).
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.batch_min != self.batch_max
    }

    /// Enables or disables batch-amortized crypto setup.
    #[must_use]
    pub fn batched_crypto(mut self, on: bool) -> Self {
        self.batched_crypto = on;
        self
    }

    /// Enables or disables double-buffered (deferred-reap) sends.
    #[must_use]
    pub fn async_send(mut self, on: bool) -> Self {
        self.async_send = on;
        self
    }

    /// Enables or disables scatter-gather sub-batch I/O on the RPC
    /// path.
    #[must_use]
    pub fn scatter_gather(mut self, on: bool) -> Self {
        self.scatter_gather = on;
        self
    }

    /// Declares the shard count this session expects.
    /// [`ServerIo::sharded`] rejects a socket set of any other size —
    /// a mismatch would silently mis-route the load generator's
    /// pinning hash, so it fails fast instead.
    ///
    /// # Panics
    /// Panics if `n` is zero, or if `n` exceeds [`MAX_SHARDS`] — the
    /// per-shard stat gauges are fixed arrays, and a count past the
    /// last slot would silently alias (or drop) gauge writes, so the
    /// config fails fast at build time instead.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "shards(0): a server needs at least one shard");
        assert!(
            n <= MAX_SHARDS,
            "shards({n}): the per-shard stat gauges have {MAX_SHARDS} slots; \
             raise MAX_SHARDS in eleos-sim to shard wider"
        );
        self.shards = Some(n);
        self
    }

    /// Selects which replica's slot of the fleet-indexed shard gauges
    /// this session writes (a fleet runs one `ServerIo` per replica
    /// over the same global [`Stats`]). Validated here, at config
    /// build time, so a fleet that outgrows the gauge array fails
    /// fast instead of aliasing a sibling replica's gauges.
    ///
    /// # Panics
    /// Panics if `r` is not below [`MAX_REPLICAS`].
    #[must_use]
    pub fn replica(mut self, r: usize) -> Self {
        assert!(
            r < MAX_REPLICAS,
            "replica({r}): the shard gauges have {MAX_REPLICAS} replica slots; \
             raise MAX_REPLICAS in eleos-sim to run a larger fleet"
        );
        self.replica = r;
        self
    }

    /// Enables the shard balance layer (re-pinning and/or stealing
    /// per `b`). Re-pinning additionally needs the
    /// [`ShardMap`][crate::loadgen::ShardMap] wired through
    /// [`Self::routed`].
    ///
    /// # Panics
    /// Panics if `b.period` or `b.max_moves` is zero.
    #[must_use]
    pub fn balanced(mut self, b: BalanceConfig) -> Self {
        assert!(
            b.period > 0,
            "balanced: the rebalance period is in reaps and must be at least one"
        );
        assert!(
            b.max_moves > 0,
            "balanced: a rebalance that may move nothing is a no-op; use repin: false"
        );
        self.balance = Some(b);
        self
    }

    /// Wires the balance layer's connection→shard map into the
    /// config: the load generator routes arrivals through `map` and
    /// the periodic rebalancer re-pins hot connections through the
    /// same map, so both sides always agree on where a connection
    /// lives. Validated against the socket set by [`Self::build`].
    #[must_use]
    pub fn routed(mut self, map: Arc<ShardMap>) -> Self {
        self.map = Some(map);
        self
    }

    /// Rotates the wire session's key epoch after every `n` decrypted
    /// requests, at the head of the next reap fence (see the module
    /// docs — the rotation is double-buffered and stall-free).
    ///
    /// # Panics
    /// Panics if `n` is zero — a zero interval would begin a new
    /// rotation at every fence, before the previous epoch ever drains.
    #[must_use]
    pub fn rekey_every(mut self, n: u64) -> Self {
        assert!(
            n > 0,
            "rekey_every(0): the old epoch needs at least one interval to drain"
        );
        self.rekey_interval = Some(n);
        self
    }

    /// Label for the rekey interval in experiment output: `rekey-N`
    /// or `rekey-inf`.
    #[must_use]
    pub fn rekey_label(&self) -> String {
        match self.rekey_interval {
            Some(n) => format!("rekey-{n}"),
            None => "rekey-inf".to_owned(),
        }
    }

    /// Label for the balance layer in experiment output.
    #[must_use]
    pub fn balance_label(&self) -> &'static str {
        if self.balance.is_some() {
            "balanced"
        } else {
            "static"
        }
    }

    /// Label for the I/O submission mode in experiment output.
    #[must_use]
    pub fn io_label(&self) -> &'static str {
        if self.scatter_gather {
            "sg"
        } else {
            "per-msg"
        }
    }

    /// Label for the sub-batch sizing policy in experiment output:
    /// `adaptive` or `fixed-N`.
    #[must_use]
    pub fn policy_label(&self) -> String {
        if self.is_adaptive() {
            "adaptive".to_owned()
        } else {
            format!("fixed-{}", self.batch_max)
        }
    }

    /// Label for experiment output (mirrors how the paging benches
    /// name the eviction policy).
    #[must_use]
    pub fn crypto_label(&self) -> &'static str {
        if self.batched_crypto {
            "batched"
        } else {
            "per-msg"
        }
    }

    /// The single [`ServerIo`] entry point: binds one serving
    /// pipeline (staging buffers + descriptor arrays + adaptive-depth
    /// state) to each socket of the shard set and wires the session
    /// in. One socket is the classic single-socket server; with more
    /// than one shard the reap/send skip the arrival-order merge and
    /// the transmit reorder buffer — per-shard FIFO is enough, because
    /// the load generator pins every connection to one shard.
    ///
    /// # Panics
    /// Panics if `fds` is empty, if the set's size disagrees with a
    /// declared [`Self::shards`] count or a wired [`Self::routed`]
    /// map, if `batch_max` does not fit the staging buffer, or if
    /// more than one shard is combined with a non-RPC path or
    /// per-message I/O (sharding rides the RPC scatter-gather path).
    #[must_use]
    pub fn build(
        mut self,
        ctx: &ThreadCtx,
        fds: &[Fd],
        path: IoPath,
        session: Arc<Session>,
    ) -> ServerIo {
        assert!(!fds.is_empty(), "a server needs at least one socket");
        if let Some(n) = self.shards {
            assert_eq!(
                n,
                fds.len(),
                "config declares {n} shard(s) but the socket set has {}: \
                 the pinning hash would route connections to sockets that \
                 don't exist (or starve ones that do)",
                fds.len()
            );
        }
        let map = self.map.take();
        if let Some(map) = &map {
            assert_eq!(
                map.n_shards(),
                fds.len(),
                "the shard map routes over {} shard(s) but the socket set has {}",
                map.n_shards(),
                fds.len()
            );
        }
        assert!(
            self.buf_len / self.batch_max > 0,
            "batch_max {} too large for a {}-byte staging buffer",
            self.batch_max,
            self.buf_len
        );
        if fds.len() > 1 {
            assert!(
                matches!(path, IoPath::Rpc(_)),
                "sharded serving rides the RPC path"
            );
            assert!(
                self.scatter_gather,
                "sharded serving needs scatter-gather sub-batches"
            );
            assert!(
                fds.len() <= MAX_SHARDS,
                "{} shards exceed the {MAX_SHARDS} per-shard stat slots",
                fds.len()
            );
            // Tag each socket with its shard class so the RPC workers'
            // mmsg fills land in that shard's LLC slice when the
            // machine partitions the RPC fence (`partition_shards`).
            for (k, &fd) in fds.iter().enumerate() {
                ctx.machine.set_shard_class(fd.0, k as u8);
            }
        }
        let depth0 = if self.is_adaptive() {
            self.batch_min
        } else {
            self.batch
        } as u64;
        let descs = self.batch_max * DESC_STRIDE;
        let shards = fds
            .iter()
            .map(|&fd| Shard {
                fd,
                rx_buf: ctx.machine.alloc_untrusted(self.buf_len),
                tx_buf: ctx.machine.alloc_untrusted(self.buf_len),
                desc_rx: ctx.machine.alloc_untrusted(descs),
                desc_tx: ctx.machine.alloc_untrusted(descs),
                depth: AtomicU64::new(depth0),
                ewma: AtomicU64::new(depth0 * EWMA_SCALE),
            })
            .collect();
        ServerIo {
            fd: fds[0],
            shards,
            last_reap: std::sync::Mutex::new(Vec::new()),
            tx_seq: AtomicU64::new(0),
            pending_send: std::sync::Mutex::new(None),
            map,
            reap_count: AtomicU64::new(0),
            served: AtomicU64::new(0),
            cfg: self,
            path,
            session,
        }
    }
}

/// One serving pipeline: a socket plus its own untrusted staging
/// buffers, descriptor arrays, and adaptive-depth state.
struct Shard {
    /// The shard's socket.
    fd: Fd,
    /// Untrusted receive buffer.
    rx_buf: u64,
    /// Untrusted transmit buffer.
    tx_buf: u64,
    /// Untrusted descriptor array for scatter-gather receives:
    /// `batch_max` 16-byte entries (two little-endian `u64` words:
    /// `(seq << 32) | len`, then the enqueue timestamp), like
    /// `recvmmsg`'s msgvec plus the socket's dequeue sequence and
    /// arrival stamp.
    desc_rx: u64,
    /// Untrusted descriptor array for scatter-gather sends (same
    /// 16-byte entries; the timestamp word is ignored and the `seq`
    /// word only matters to the sequenced single-socket path).
    desc_tx: u64,
    /// The controller's current sub-batch depth (messages per reap).
    /// Constant at `cfg.batch` when the depth is fixed.
    depth: AtomicU64,
    /// Fixed-point ([`EWMA_SCALE`]) EWMA of messages per reap — the
    /// shard's observed arrival rate, which the controller shrinks
    /// toward when the queue drains.
    ewma: AtomicU64,
}

/// One server session: a socket set (one socket per shard — one for
/// the classic single-socket server), untrusted staging buffers, and
/// the session cipher.
pub struct ServerIo {
    /// Shard 0's socket — *the* socket of a single-socket server.
    pub fd: Fd,
    /// The serving pipelines, one per socket.
    shards: Vec<Shard>,
    /// `(socket, pipe, count)` split of the last sharded reap, so the
    /// matching send can route each reply back out the socket its
    /// request arrived on. `socket == pipe` for a shard's own reap; a
    /// stolen run is staged in the thief's pipe (`pipe`) but belongs
    /// to the victim's socket (`socket`).
    last_reap: std::sync::Mutex<Vec<(usize, usize, usize)>>,
    /// The balance layer's connection→shard indirection, when wired
    /// via [`ServerIoConfig::routed`]. Consulted by the load
    /// generator at push time; the rebalancer re-pins through it.
    map: Option<Arc<ShardMap>>,
    /// Sharded reaps completed — the rebalance period's clock.
    reap_count: AtomicU64,
    /// Requests decrypted since the last key rotation — the
    /// [`ServerIoConfig::rekey_every`] interval's clock.
    served: AtomicU64,
    /// Next transmit sequence number for sequenced scatter-gather
    /// sends (single-socket path only). The host commits payloads to
    /// the wire strictly in this order, so parallel send sub-batches
    /// cannot reorder responses.
    tx_seq: AtomicU64,
    /// The in-flight deferred send, when `cfg.async_send` is on: the
    /// transmit buffers belong to the workers until this is reaped.
    pending_send: std::sync::Mutex<Option<eleos_rpc::RpcBatch>>,
    /// Session tunables.
    pub cfg: ServerIoConfig,
    /// Syscall mechanism.
    pub path: IoPath,
    /// The wire session (handshake, epoch keys, revocation).
    pub session: Arc<Session>,
}

impl ServerIo {
    /// The balance layer's connection map, when this server was built
    /// with [`ServerIoConfig::routed`].
    #[must_use]
    pub fn shard_map(&self) -> Option<&Arc<ShardMap>> {
        self.map.as_ref()
    }

    /// Number of serving pipelines (sockets).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `idx`'s current sub-batch depth (the fixed `cfg.batch`
    /// unless the config is adaptive).
    #[must_use]
    pub fn shard_depth(&self, idx: usize) -> usize {
        self.shards[idx].depth.load(Ordering::Relaxed) as usize
    }

    /// One AIMD step for a shard's sub-batch depth, fed by the reap
    /// it just completed: `got` messages popped, `backlog` still
    /// queued. Empty reap → halve (we are polling faster than
    /// arrivals); backlog left behind → grow at least to the backlog
    /// (the burst needs deeper amortization); drained exactly →
    /// shrink toward the arrival EWMA.
    fn adapt(&self, shard: &Shard, got: usize, backlog: usize) {
        if !self.cfg.is_adaptive() {
            return;
        }
        let (min, max) = (self.cfg.batch_min as u64, self.cfg.batch_max as u64);
        let ewma = (3 * shard.ewma.load(Ordering::Relaxed) + got as u64 * EWMA_SCALE) / 4;
        shard.ewma.store(ewma, Ordering::Relaxed);
        let depth = shard.depth.load(Ordering::Relaxed);
        let next = if got == 0 {
            depth / 2
        } else if backlog > 0 {
            (depth + 1).max(backlog as u64)
        } else {
            depth.min(ewma.div_ceil(EWMA_SCALE))
        };
        shard.depth.store(next.clamp(min, max), Ordering::Relaxed);
    }

    /// Receives and decrypts one request: a batch of one over the
    /// shared reap path. Returns `None` when the socket queue is
    /// empty. Single-socket servers only — a sharded server reaps
    /// whole sub-batches per shard.
    pub fn recv_msg(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        assert_eq!(
            self.shards.len(),
            1,
            "single-message receive is a single-socket affair; use recv_batch on a sharded server"
        );
        self.recv_up_to(ctx, 1).pop()
    }

    /// Receives and decrypts up to one sub-batch of requests, in the
    /// socket's arrival order, decrypting the whole reap in one
    /// batched crypto pass. The sub-batch depth is `cfg.batch`, or
    /// the controller's current depth under [`ServerIoConfig::adaptive`];
    /// a sharded server reaps one sub-batch per shard, concatenated
    /// shard by shard.
    pub fn recv_batch(&self, ctx: &mut ThreadCtx) -> Vec<Vec<u8>> {
        if self.shards.len() > 1 {
            let all: Vec<usize> = (0..self.shards.len()).collect();
            return self.recv_sharded(ctx, &all);
        }
        let depth = self.shard_depth(0);
        let out = self.recv_up_to(ctx, depth);
        let backlog = ctx.machine.host.rx_pending(self.fd);
        if self.cfg.is_adaptive() {
            self.adapt(&self.shards[0], out.len(), backlog);
        }
        let shard = &ctx.machine.stats.shard.replica[self.cfg.replica];
        Stats::set(&shard.backlog[0], backlog as u64);
        Stats::set(
            &shard.depth[0],
            self.shards[0].depth.load(Ordering::Relaxed),
        );
        out
    }

    /// The sharded reap restricted to an owned shard subset — the
    /// fleet tier's entry point, where each replica's pipeline reaps
    /// only the shards the router assigned to it. Steal and rebalance
    /// stay scoped to the subset: a stolen run is served by the pipe
    /// that drained it, and a re-pin moves a connection's state with
    /// its replies, so neither may cross a replica boundary.
    ///
    /// # Panics
    /// Panics if `active` is empty, not strictly increasing, or names
    /// a shard this server does not have.
    pub fn recv_batch_on(&self, ctx: &mut ThreadCtx, active: &[usize]) -> Vec<Vec<u8>> {
        assert!(
            !active.is_empty(),
            "a replica with no shards has nothing to reap; drain it instead"
        );
        assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "the owned shard subset must be strictly increasing (got {active:?})"
        );
        assert!(
            *active.last().unwrap() < self.shards.len(),
            "shard subset {active:?} names shards past the {}-socket set",
            self.shards.len()
        );
        if self.shards.len() == 1 {
            return self.recv_batch(ctx);
        }
        self.recv_sharded(ctx, active)
    }

    /// One fence-head check of the rekey interval: once the server
    /// has decrypted [`ServerIoConfig::rekey_every`] requests, retire
    /// any still-draining rotation (its in-flight reaps ended with
    /// the previous batch) and begin the next one. Runs at the head
    /// of every reap — the only point where the pipeline holds no
    /// half-served requests — so rotation never splits a batch's
    /// crypto between epochs mid-serve.
    fn maybe_rekey(&self, ctx: &mut ThreadCtx) {
        let Some(interval) = self.cfg.rekey_interval else {
            return;
        };
        if self.served.load(Ordering::Relaxed) < interval {
            return;
        }
        self.served.store(0, Ordering::Relaxed);
        self.session.finish_rekey();
        if matches!(self.session.state(), SessionState::Established(_)) {
            self.session.begin_rekey(ctx);
        }
    }

    /// The shared reap/sort/decrypt path behind every receive entry
    /// point: collect up to `max` raw messages in arrival order, then
    /// decrypt them all in one [`Session::decrypt_batch_in_enclave`]
    /// pass.
    ///
    /// The paper's untrusted baseline also decrypts every request
    /// (§2), so the crypto charge applies on all paths.
    fn recv_up_to(&self, ctx: &mut ThreadCtx, max: usize) -> Vec<Vec<u8>> {
        assert!(max > 0);
        self.maybe_rekey(ctx);
        let raw = self.reap_raw(ctx, max);
        if raw.is_empty() {
            return Vec::new();
        }
        let refs: Vec<&[u8]> = raw.iter().map(Vec::as_slice).collect();
        let out = self
            .session
            .decrypt_batch_in_enclave(ctx, &refs, self.cfg.batched_crypto);
        self.served.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The sharded reap: one `recv_mmsg` sub-batch per shard (each at
    /// its shard's controller depth), submitted together as one RPC
    /// batch. Per-shard slot order *is* arrival order — connections
    /// never span shards — so there is no seq-sort merge and no
    /// `reap_merge` charge; messages come back concatenated shard by
    /// shard and the `(socket, pipe, count)` split is recorded for
    /// the matching [`Self::send_batch`] to route replies home.
    ///
    /// With a [`BalanceConfig`] the reap grows a second wave: shards
    /// that came back empty steal one sub-batch from the deepest
    /// residual backlog (see the module docs), and every
    /// [`BalanceConfig::period`] reaps the rebalancer re-pins hot
    /// connections through the shard map.
    fn recv_sharded(&self, ctx: &mut ThreadCtx, active: &[usize]) -> Vec<Vec<u8>> {
        let IoPath::Rpc(svc) = &self.path else {
            unreachable!("sharded serving rides the RPC path (checked at construction)");
        };
        self.maybe_rekey(ctx);
        let stripe = self.cfg.buf_len / self.cfg.batch_max;
        let reqs: Vec<(u64, [u64; 4])> = active
            .iter()
            .map(|&k| {
                let sh = &self.shards[k];
                (
                    funcs::RECV_MMSG,
                    [
                        sh.fd.0 as u64,
                        sh.rx_buf,
                        ((stripe as u64) << 32) | sh.depth.load(Ordering::Relaxed),
                        sh.desc_rx,
                    ],
                )
            })
            .collect();
        let counts = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        let now = ctx.now();
        let mut raw: Vec<Vec<u8>> = Vec::new();
        let mut reap = Vec::with_capacity(active.len());
        let mut backlog = vec![0usize; self.shards.len()];
        for (&idx, &n) in active.iter().zip(counts.iter()) {
            let n = n as usize;
            reap.push((idx, idx, n));
            if n > 0 {
                self.read_run(ctx, idx, n, idx, now, &mut raw);
            }
            backlog[idx] = ctx.machine.host.rx_pending(self.shards[idx].fd);
            if self.cfg.is_adaptive() {
                self.adapt(&self.shards[idx], n, backlog[idx]);
            }
        }
        if self.cfg.balance.is_some_and(|b| b.steal) {
            self.steal_pass(ctx, svc, active, &counts, &mut backlog, &mut reap, &mut raw);
        }
        for &k in active {
            let shard = &ctx.machine.stats.shard.replica[self.cfg.replica];
            Stats::set(&shard.backlog[k], backlog[k] as u64);
            Stats::set(
                &shard.depth[k],
                self.shards[k].depth.load(Ordering::Relaxed),
            );
        }
        *self.last_reap.lock().expect("last reap") = reap;
        if let (Some(b), Some(map)) = (self.cfg.balance, self.map.as_ref()) {
            let reaps = self.reap_count.fetch_add(1, Ordering::Relaxed) + 1;
            if b.repin && reaps.is_multiple_of(b.period as u64) {
                self.rebalance(ctx, map, b.max_moves, active);
            }
        }
        if raw.is_empty() {
            return Vec::new();
        }
        let refs: Vec<&[u8]> = raw.iter().map(Vec::as_slice).collect();
        let out = self
            .session
            .decrypt_batch_in_enclave(ctx, &refs, self.cfg.batched_crypto);
        self.served.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Reads one reaped sub-batch out of pipe `pipe`'s staging
    /// buffers: records each op's sojourn (globally and against shard
    /// `charge`'s histogram — the *socket* the op waited on, not the
    /// pipe that drained it) and appends the raw payloads in slot
    /// order.
    fn read_run(
        &self,
        ctx: &mut ThreadCtx,
        pipe: usize,
        n: usize,
        charge: usize,
        now: u64,
        raw: &mut Vec<Vec<u8>>,
    ) {
        let stripe = self.cfg.buf_len / self.cfg.batch_max;
        let sh = &self.shards[pipe];
        let mut descs = vec![0u8; n * DESC_STRIDE];
        ctx.read_untrusted(sh.desc_rx, &mut descs);
        for i in 0..n {
            let at = i * DESC_STRIDE;
            let w0 = u64::from_le_bytes(descs[at..at + 8].try_into().unwrap());
            let enq = u64::from_le_bytes(descs[at + 8..at + 16].try_into().unwrap());
            let wait = now.saturating_sub(enq);
            ctx.machine.stats.sojourn.record(wait);
            ctx.machine.stats.shard.replica[self.cfg.replica].sojourn[charge].record(wait);
            let mut msg = vec![0u8; (w0 & 0xffff_ffff) as usize];
            ctx.read_untrusted(sh.rx_buf + (i * stripe) as u64, &mut msg);
            raw.push(msg);
        }
    }

    /// The steal wave: every shard whose own reap came back empty
    /// picks the un-claimed sibling with the deepest residual backlog
    /// and reaps one extra `recv_mmsg` sub-batch from *that* socket
    /// into its own (idle) staging buffers. At most one thief per
    /// victim per reap: `recv_mmsg` pops the queue front under one
    /// lock, so a single steal is the victim's oldest contiguous run,
    /// but two concurrent steals of the same socket would interleave.
    #[allow(clippy::too_many_arguments)]
    fn steal_pass(
        &self,
        ctx: &mut ThreadCtx,
        svc: &Arc<RpcService>,
        active: &[usize],
        counts: &[u64],
        backlog: &mut [usize],
        reap: &mut Vec<(usize, usize, usize)>,
        raw: &mut Vec<Vec<u8>>,
    ) {
        let stripe = self.cfg.buf_len / self.cfg.batch_max;
        let mut claimed = vec![false; self.shards.len()];
        let mut steals: Vec<(usize, usize)> = Vec::new();
        for (&t, &got) in active.iter().zip(counts.iter()) {
            if got != 0 {
                continue;
            }
            // A victim is only worth robbing when its residue
            // outruns its own sub-batch depth — anything smaller the
            // victim clears on its next (already amortized) reap, and
            // the steal's extra trap would cost more than it saves.
            // Victims come from the same owned subset: a steal serves
            // the drained run on the thief's pipeline, and crossing a
            // replica boundary would serve another replica's
            // connections out of order with its own reaps.
            let victim = active
                .iter()
                .copied()
                .filter(|&v| {
                    v != t
                        && !claimed[v]
                        && backlog[v] > self.shards[v].depth.load(Ordering::Relaxed) as usize
                })
                .max_by_key(|&v| backlog[v]);
            let Some(v) = victim else { continue };
            claimed[v] = true;
            steals.push((v, t));
        }
        if steals.is_empty() {
            return;
        }
        let reqs: Vec<(u64, [u64; 4])> = steals
            .iter()
            .map(|&(v, t)| {
                let th = &self.shards[t];
                // Steal half the victim's residual backlog (the
                // classic steal-half split), capped by the thief's
                // staging capacity — NOT by the thief's AIMD depth,
                // which has just decayed toward the floor precisely
                // because its own queue is empty. A depth-sized steal
                // would move one or two messages per extra trap and
                // cost more than it saves.
                let want = (backlog[v] / 2).clamp(1, self.cfg.batch_max) as u64;
                (
                    funcs::RECV_MMSG,
                    [
                        self.shards[v].fd.0 as u64,
                        th.rx_buf,
                        ((stripe as u64) << 32) | want,
                        th.desc_rx,
                    ],
                )
            })
            .collect();
        let got = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        let now = ctx.now();
        for (&(v, t), &m) in steals.iter().zip(got.iter()) {
            let m = m as usize;
            if m == 0 {
                continue;
            }
            reap.push((v, t, m));
            self.read_run(ctx, t, m, v, now, raw);
            let shard = &ctx.machine.stats.shard.replica[self.cfg.replica];
            Stats::add(&shard.steals_taken[t], 1);
            Stats::add(&shard.steals_given[v], 1);
            backlog[v] = ctx.machine.host.rx_pending(self.shards[v].fd);
        }
    }

    /// One rebalance decision at a sub-batch boundary: rank shards by
    /// the map's recent *arrival weights*, and when the hottest
    /// shard's intake exceeds the coldest's by at least a quarter of
    /// its own, re-pin up to `max_moves` of its heaviest connections
    /// onto the coldest.
    ///
    /// The ranking deliberately ignores residual socket backlog.
    /// Queued messages never move across the fence, so backlog is a
    /// lagging signal: it stays skewed for many reaps after a re-pin
    /// already fixed the intake, and ranking by it keeps firing until
    /// every connection has been shovelled to the other side — the
    /// imbalance flips instead of closing. Arrival weights respond to
    /// the actuator instantly (a re-pinned connection's weight moves
    /// with it), so the loop converges. Each move is also guarded so
    /// it cannot overshoot: moving a connection of weight `w` shrinks
    /// the hot/cold gap only when `w` is smaller than the gap.
    ///
    /// Only future arrivals move — queued messages stay on the socket
    /// the kernel already holds them in, so per-connection order is a
    /// per-socket FIFO property on both sides of the fence.
    fn rebalance(&self, ctx: &ThreadCtx, map: &Arc<ShardMap>, max_moves: usize, active: &[usize]) {
        /// Weight gap below which a rebalance is noise, not signal
        /// (decay shrinks stale weights toward zero between chunks).
        const FLOOR: u64 = 8;
        let w = map.shard_weights();
        // Hot and cold are ranked over the owned subset only: a re-pin
        // moves a connection's future arrivals with its serving state,
        // and state never crosses a replica boundary outside an
        // explicit failover handoff.
        let hot = active.iter().copied().max_by_key(|&k| w[k]).unwrap_or(0);
        let cold = active.iter().copied().min_by_key(|&k| w[k]).unwrap_or(0);
        let mut gap = (w[hot] - w[cold]) as i64;
        if hot != cold && gap as u64 >= FLOOR && gap as u64 * 4 >= w[hot] {
            let mut moved = 0u64;
            for (conn, cw) in map.hottest_conns(hot, max_moves) {
                // Moving `cw` changes the gap to |gap - 2cw|; demand
                // it at least halve, or the move trades one hot shard
                // for another (a connection carrying most of the gap
                // can't be split — leave it and move its lighter
                // neighbours instead).
                if 4 * cw as i64 > 3 * gap {
                    continue;
                }
                map.repin(conn, cold);
                moved += 1;
                gap -= 2 * cw as i64;
                if gap <= 0 {
                    break;
                }
            }
            if moved > 0 {
                Stats::add(
                    &ctx.machine.stats.shard.replica[self.cfg.replica].migrations[hot],
                    moved,
                );
            }
        }
        // Halve the arrival weights each decision so the ranking
        // tracks recent traffic, not all-time totals.
        map.decay();
    }

    /// Collects up to `max` raw wire messages in the socket's arrival
    /// order, without decrypting.
    ///
    /// On the RPC scatter-gather path the reap is split into one
    /// `recvmmsg`-style sub-batch per worker — contiguous stripe
    /// ranges of the receive buffer, submitted together as one RPC
    /// batch. Each sub-batch costs one syscall and one kernel-metadata
    /// charge regardless of how many messages it pops, and the
    /// sub-batches drain the socket concurrently, so their slots
    /// interleave; every descriptor carries the socket's dequeue
    /// sequence and the reap merges by a global seq sort (paying
    /// `reap_merge` per message when more than one sub-batch
    /// interleaves). A single worker degenerates to the one-job
    /// scatter-gather reap. With `scatter_gather` off the reap falls
    /// back to per-message `RECV_TAGGED` jobs (same seq-sorted merge,
    /// one syscall *per message*). On the native/OCALL paths this
    /// degrades to a sequential loop that stops at the first
    /// would-block.
    fn reap_raw(&self, ctx: &mut ThreadCtx, max: usize) -> Vec<Vec<u8>> {
        let sh = &self.shards[0];
        let svc = match &self.path {
            IoPath::Rpc(svc) => svc,
            _ => {
                let mut out = Vec::new();
                while out.len() < max {
                    match self.recv_raw(ctx) {
                        Some(msg) => out.push(msg),
                        None => break,
                    }
                }
                return out;
            }
        };
        let stripe = self.cfg.buf_len / max;
        assert!(stripe > 0, "batch too large for the receive buffer");
        let lanes = svc.worker_count().max(1).min(max);
        if self.cfg.scatter_gather {
            let ranges = split_ranges(max, svc.worker_count().max(1));
            let reqs: Vec<(u64, [u64; 4])> = ranges
                .iter()
                .map(|&(start, count)| {
                    (
                        funcs::RECV_MMSG,
                        [
                            sh.fd.0 as u64,
                            sh.rx_buf + (start * stripe) as u64,
                            ((stripe as u64) << 32) | count as u64,
                            sh.desc_rx + (start * DESC_STRIDE) as u64,
                        ],
                    )
                })
                .collect();
            let counts = svc.submit_batch(ctx, &reqs).wait_all(ctx);
            let now = ctx.now();
            // (seq, slot, len, enqueue stamp) across all sub-batches:
            // sub-batches pop concurrently, so arrival order is
            // reconstructed from the dequeue sequences, not the slot
            // layout.
            let mut got: Vec<(u64, usize, usize, u64)> = Vec::new();
            for (&(start, _), &n) in ranges.iter().zip(counts.iter()) {
                let n = n as usize;
                if n == 0 {
                    continue;
                }
                let mut descs = vec![0u8; n * DESC_STRIDE];
                ctx.read_untrusted(sh.desc_rx + (start * DESC_STRIDE) as u64, &mut descs);
                for i in 0..n {
                    let at = i * DESC_STRIDE;
                    let w0 = u64::from_le_bytes(descs[at..at + 8].try_into().unwrap());
                    let enq = u64::from_le_bytes(descs[at + 8..at + 16].try_into().unwrap());
                    got.push((w0 >> 32, start + i, (w0 & 0xffff_ffff) as usize, enq));
                }
            }
            got.sort_unstable_by_key(|&(seq, _, _, _)| seq);
            // More than one sub-batch interleaved: pay the per-message
            // merge (the sharded path skips this — per-shard slot
            // order is already arrival order).
            if lanes > 1 && got.len() > 1 {
                ctx.compute(ctx.machine.cfg.costs.reap_merge * got.len() as u64);
            }
            let mut out = Vec::with_capacity(got.len());
            for (_seq, slot, n, enq) in got {
                let wait = now.saturating_sub(enq);
                ctx.machine.stats.sojourn.record(wait);
                // The single-socket server is shard 0 of a one-shard
                // set, so its per-shard histogram mirrors the global.
                ctx.machine.stats.shard.replica[self.cfg.replica].sojourn[0].record(wait);
                let mut msg = vec![0u8; n];
                ctx.read_untrusted(sh.rx_buf + (slot * stripe) as u64, &mut msg);
                out.push(msg);
            }
            return out;
        }
        let reqs: Vec<(u64, [u64; 4])> = (0..max)
            .map(|i| {
                let addr = sh.rx_buf + (i * stripe) as u64;
                (funcs::RECV_TAGGED, [sh.fd.0 as u64, addr, stripe as u64, 0])
            })
            .collect();
        let rets = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        // (seq, stripe index, len) for every slot that got a message.
        let mut got: Vec<(u64, usize, usize)> = rets
            .into_iter()
            .enumerate()
            .filter(|&(_, r)| r != u64::MAX)
            .map(|(i, r)| (r >> 32, i, (r & 0xffff_ffff) as usize))
            .collect();
        got.sort_unstable_by_key(|&(seq, _, _)| seq);
        // Same merge charge as the scatter-gather reap: the jobs ran
        // across `lanes` workers and completed interleaved.
        if lanes > 1 && got.len() > 1 {
            ctx.compute(ctx.machine.cfg.costs.reap_merge * got.len() as u64);
        }
        let mut out = Vec::with_capacity(got.len());
        for (_seq, i, n) in got {
            let mut msg = vec![0u8; n];
            ctx.read_untrusted(sh.rx_buf + (i * stripe) as u64, &mut msg);
            out.push(msg);
        }
        out
    }

    /// One raw receive on the non-RPC paths. Returns `None` when the
    /// socket queue is empty.
    fn recv_raw(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        let machine = Arc::clone(&ctx.machine);
        let sh = &self.shards[0];
        let n = match &self.path {
            IoPath::Native => {
                assert!(!ctx.in_enclave(), "native path runs untrusted");
                machine.host.recv(ctx, sh.fd, sh.rx_buf, self.cfg.buf_len)?
            }
            IoPath::Ocall => {
                let fd = sh.fd;
                let (rx, len) = (sh.rx_buf, self.cfg.buf_len);
                let r = ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.recv(c, fd, rx, len)
                });
                r?
            }
            IoPath::Rpc(_) => unreachable!("the RPC path reaps through the ring"),
        };
        let mut msg = vec![0u8; n];
        ctx.read_untrusted(sh.rx_buf, &mut msg);
        Some(msg)
    }

    /// Blocking receive: when the queue is empty, waits via repeated
    /// `poll()` OCALLs (the paper's split: short calls go exit-less,
    /// long blocking waits take the naive exit, §3.1) and then
    /// receives. On the native path it simply spins on `poll`.
    /// Single-socket servers only.
    ///
    /// Returns `None` when the session has been revoked — the one
    /// condition under which no message can ever arrive again, so the
    /// wait would otherwise spin forever.
    pub fn recv_msg_blocking(&self, ctx: &mut ThreadCtx) -> Option<Vec<u8>> {
        loop {
            if self.session.state() == SessionState::Revoked {
                return None;
            }
            if let Some(msg) = self.recv_msg(ctx) {
                return Some(msg);
            }
            let fd = self.fd;
            let ready = match &self.path {
                IoPath::Native => {
                    let m = Arc::clone(&ctx.machine);
                    m.host.poll(ctx, fd)
                }
                // Both enclaved paths block via OCALL, per the paper.
                _ => ctx.ocall(|c| {
                    let m = Arc::clone(&c.machine);
                    m.host.poll(c, fd)
                }),
            };
            if !ready {
                std::thread::yield_now();
            }
        }
    }

    /// Encrypts and sends a batch of responses, sealing them all in
    /// one batched crypto pass.
    ///
    /// On the RPC path the `send` jobs go out as one batched
    /// submission from per-message stripes of the transmit buffer; on
    /// the other paths responses are sent one by one (but still
    /// encrypted as a batch). A sharded server routes each reply back
    /// out the shard its request arrived on (replies must answer the
    /// last reap 1:1, in order — the serve loop's natural shape).
    pub fn send_batch(&self, ctx: &mut ThreadCtx, replies: &[Vec<u8>]) {
        if self.shards.len() > 1 {
            self.send_sharded(ctx, replies);
            return;
        }
        let refs: Vec<&[u8]> = replies.iter().map(Vec::as_slice).collect();
        self.send_all(ctx, &refs);
    }

    /// Encrypts and sends one response: a batch of one. Single-socket
    /// servers only.
    pub fn send_msg(&self, ctx: &mut ThreadCtx, plain: &[u8]) {
        assert_eq!(
            self.shards.len(),
            1,
            "single-message send is a single-socket affair; use send_batch on a sharded server"
        );
        self.send_all(ctx, &[plain]);
    }

    /// Reaps the deferred send, if one is in flight. The overlap-aware
    /// wait charges only worker time the serving core has not already
    /// covered with its own progress — in steady state, nothing.
    pub fn flush(&self, ctx: &mut ThreadCtx) {
        if let Some(batch) = self.pending_send.lock().expect("pending send").take() {
            batch.wait_all(ctx);
        }
    }

    /// Revokes the server's session: a terminal fence. The session
    /// flips to [`SessionState::Revoked`] (refusing all future seals
    /// and opens), any deferred send is flushed, and the traffic
    /// already queued on the shard sockets is drained and dropped
    /// without serving — a revoked peer's bytes never reach the
    /// application. Returns how many messages were queued at the
    /// moment of revocation.
    pub fn revoke(&self, ctx: &mut ThreadCtx) -> usize {
        self.session.revoke(ctx);
        self.flush(ctx);
        let queued: usize = self
            .shards
            .iter()
            .map(|sh| ctx.machine.host.rx_pending(sh.fd))
            .sum();
        // The reap machinery still runs (the kernel does not know the
        // session died), but every message fails the epoch lookup in
        // the open path and is dropped, so the batches come back
        // empty.
        while self
            .shards
            .iter()
            .any(|sh| ctx.machine.host.rx_pending(sh.fd) > 0)
        {
            let drained = self.recv_batch(ctx);
            assert!(
                drained.is_empty(),
                "a revoked session must not surface queued traffic"
            );
        }
        queued
    }

    /// The sharded send: splits `replies` by the last reap's
    /// `(socket, pipe, count)` record and sends each slice as one
    /// *unsequenced* `send_mmsg` sub-batch out its socket — slot
    /// order is per-shard arrival order, so the kernel transmit
    /// reorder buffer (and its `tx_reorder` charge) is skipped.
    ///
    /// A stolen run's replies are staged in the thief's transmit
    /// buffers but go out the *victim's* socket, strictly after the
    /// victim's own sub-batch: two unsequenced jobs on one socket in
    /// one submission could interleave across workers, so repeated
    /// sockets are deferred to a second send wave behind a barrier
    /// (and the send stays synchronous — a deferred second wave would
    /// race the next reap for the thief's buffers).
    fn send_sharded(&self, ctx: &mut ThreadCtx, replies: &[Vec<u8>]) {
        if replies.is_empty() {
            return;
        }
        let IoPath::Rpc(svc) = &self.path else {
            unreachable!("sharded serving rides the RPC path (checked at construction)");
        };
        // The transmit buffers may still belong to a deferred send.
        self.flush(ctx);
        let refs: Vec<&[u8]> = replies.iter().map(Vec::as_slice).collect();
        let msgs = self
            .session
            .encrypt_batch_in_enclave(ctx, &refs, self.cfg.batched_crypto);
        let reap = self.last_reap.lock().expect("last reap").clone();
        let total: usize = reap.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(
            msgs.len(),
            total,
            "sharded send must answer the last reap 1:1"
        );
        let stripe = self.cfg.buf_len / self.cfg.batch_max;
        let mut seen = vec![false; self.shards.len()];
        let mut wave1 = Vec::new();
        let mut wave2 = Vec::new();
        let mut off = 0;
        for &(socket, pipe, n) in &reap {
            if n == 0 {
                continue;
            }
            let sh = &self.shards[pipe];
            let mut descs = Vec::with_capacity(n * DESC_STRIDE);
            for (i, msg) in msgs[off..off + n].iter().enumerate() {
                assert!(
                    msg.len() <= stripe,
                    "batched response exceeds its tx stripe"
                );
                ctx.write_untrusted(sh.tx_buf + (i * stripe) as u64, msg);
                descs.extend_from_slice(&(msg.len() as u64).to_le_bytes());
                descs.extend_from_slice(&0u64.to_le_bytes());
            }
            ctx.write_untrusted(sh.desc_tx, &descs);
            let req = (
                funcs::SEND_MMSG_UNSEQ,
                [
                    self.shards[socket].fd.0 as u64,
                    sh.tx_buf,
                    ((stripe as u64) << 32) | n as u64,
                    sh.desc_tx,
                ],
            );
            if seen[socket] {
                wave2.push(req);
            } else {
                seen[socket] = true;
                wave1.push(req);
            }
            off += n;
        }
        if wave2.is_empty() {
            let batch = svc.submit_batch(ctx, &wave1);
            if self.cfg.async_send {
                *self.pending_send.lock().expect("pending send") = Some(batch);
            } else {
                batch.wait_all(ctx);
            }
        } else {
            svc.submit_batch(ctx, &wave1).wait_all(ctx);
            svc.submit_batch(ctx, &wave2).wait_all(ctx);
        }
    }

    /// The shared encrypt/stage/send path behind every single-socket
    /// send entry point.
    fn send_all(&self, ctx: &mut ThreadCtx, replies: &[&[u8]]) {
        if replies.is_empty() {
            return;
        }
        let sh = &self.shards[0];
        let msgs = self
            .session
            .encrypt_batch_in_enclave(ctx, replies, self.cfg.batched_crypto);
        let stripe = self.cfg.buf_len / msgs.len();
        if let IoPath::Rpc(svc) = &self.path {
            // The transmit buffer may still belong to a deferred send.
            self.flush(ctx);
            // Mirror of the receive side: one sendmmsg-style
            // scatter-gather sub-batch per worker (one syscall and one
            // kernel-metadata charge each), executing in parallel. The
            // descriptors carry transmit sequences, so the kernel
            // reorder buffer commits the responses to the wire in
            // order no matter which worker runs which sub-batch.
            if self.cfg.scatter_gather && msgs.len() <= self.cfg.batch_max {
                let seq0 = self.tx_seq.fetch_add(msgs.len() as u64, Ordering::Relaxed);
                let mut descs = Vec::with_capacity(msgs.len() * DESC_STRIDE);
                for (i, msg) in msgs.iter().enumerate() {
                    assert!(
                        msg.len() <= stripe,
                        "batched response exceeds its tx stripe"
                    );
                    ctx.write_untrusted(sh.tx_buf + (i * stripe) as u64, msg);
                    let d = ((seq0 + i as u64) << 32) | msg.len() as u64;
                    descs.extend_from_slice(&d.to_le_bytes());
                    descs.extend_from_slice(&0u64.to_le_bytes());
                }
                ctx.write_untrusted(sh.desc_tx, &descs);
                let ranges = split_ranges(msgs.len(), svc.worker_count().max(1));
                let reqs: Vec<(u64, [u64; 4])> = ranges
                    .iter()
                    .map(|&(start, count)| {
                        (
                            funcs::SEND_MMSG,
                            [
                                sh.fd.0 as u64,
                                sh.tx_buf + (start * stripe) as u64,
                                ((stripe as u64) << 32) | count as u64,
                                sh.desc_tx + (start * DESC_STRIDE) as u64,
                            ],
                        )
                    })
                    .collect();
                let batch = svc.submit_batch(ctx, &reqs);
                if self.cfg.async_send {
                    *self.pending_send.lock().expect("pending send") = Some(batch);
                } else {
                    batch.wait_all(ctx);
                }
                return;
            }
            let mut reqs = Vec::with_capacity(msgs.len());
            for (i, msg) in msgs.iter().enumerate() {
                assert!(
                    msg.len() <= stripe,
                    "batched response exceeds its tx stripe"
                );
                let addr = sh.tx_buf + (i * stripe) as u64;
                ctx.write_untrusted(addr, msg);
                reqs.push((funcs::SEND, [sh.fd.0 as u64, addr, msg.len() as u64, 0]));
            }
            svc.submit_batch(ctx, &reqs).wait_all(ctx);
            return;
        }
        let machine = Arc::clone(&ctx.machine);
        for (i, msg) in msgs.iter().enumerate() {
            assert!(
                msg.len() <= stripe,
                "batched response exceeds its tx stripe"
            );
            let addr = sh.tx_buf + (i * stripe) as u64;
            ctx.write_untrusted(addr, msg);
            match &self.path {
                IoPath::Native => {
                    machine.host.send(ctx, sh.fd, addr, msg.len());
                }
                IoPath::Ocall => {
                    let fd = sh.fd;
                    let len = msg.len();
                    ctx.ocall(move |c| {
                        let m = Arc::clone(&c.machine);
                        m.host.send(c, fd, addr, len)
                    });
                }
                IoPath::Rpc(_) => unreachable!("handled above"),
            }
        }
    }
}

/// Splits `total` slots into up to `parts` contiguous `(start, count)`
/// ranges — one scatter-gather sub-batch per worker. The first
/// `total % parts` ranges take the extra slot, so sub-batch sizes
/// differ by at most one and every slot is covered exactly once.
fn split_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, total.max(1));
    let (base, rem) = (total / parts, total % parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for j in 0..parts {
        let count = base + usize::from(j < rem);
        if count == 0 {
            break;
        }
        ranges.push((start, count));
        start += count;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};
    use eleos_enclave::thread::ThreadCtx;

    #[test]
    fn split_ranges_covers_every_slot_once() {
        for total in 1..=65usize {
            for parts in 1..=8usize {
                let ranges = split_ranges(total, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for &(start, count) in &ranges {
                    assert_eq!(start, next, "ranges must be contiguous");
                    assert!(count > 0);
                    next += count;
                }
                assert_eq!(next, total, "every slot covered exactly once");
                let max = ranges.iter().map(|r| r.1).max().unwrap();
                let min = ranges.iter().map(|r| r.1).min().unwrap();
                assert!(max - min <= 1, "sub-batches differ by at most one");
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch(0)")]
    fn zero_batch_fails_fast() {
        let _ = ServerIoConfig::default().batch(0);
    }

    #[test]
    #[should_panic(expected = "batch_min must not exceed batch_max")]
    fn inverted_adaptive_bounds_fail_fast() {
        let _ = ServerIoConfig::default().adaptive(8, 4);
    }

    #[test]
    #[should_panic(expected = "batch_min must be at least one")]
    fn zero_adaptive_floor_fails_fast() {
        let _ = ServerIoConfig::default().adaptive(0, 4);
    }

    #[test]
    fn policy_labels_name_the_depth_rule() {
        assert_eq!(ServerIoConfig::default().batch(8).policy_label(), "fixed-8");
        assert_eq!(
            ServerIoConfig::default().adaptive(1, 32).policy_label(),
            "adaptive"
        );
        assert!(!ServerIoConfig::default().batch(8).is_adaptive());
        assert!(ServerIoConfig::default().adaptive(1, 32).is_adaptive());
        // Degenerate adaptive range is just a fixed depth.
        assert!(!ServerIoConfig::default().adaptive(4, 4).is_adaptive());
    }

    #[test]
    fn blocking_recv_waits_for_a_producer() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([2u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 64 << 10);
        let io =
            ServerIoConfig::with_buf_len(4096).build(&ut, &[fd], IoPath::Ocall, Arc::clone(&wire));

        // A producer that delivers after a delay.
        let producer = {
            let m = Arc::clone(&m);
            let wire = Arc::clone(&wire);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let ut = ThreadCtx::untrusted(&m, 2);
                m.host.push_request(&ut, fd, &wire.encrypt(b"late arrival"));
            })
        };
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        let msg = io
            .recv_msg_blocking(&mut t)
            .expect("a live session must deliver");
        assert_eq!(msg, b"late arrival");
        // The wait took the OCALL path (poll syscalls with exits).
        let d = m.stats.snapshot() - s0;
        assert!(d.ocalls >= 1, "blocking wait must OCALL-poll");
        t.exit();
        producer.join().unwrap();
    }

    #[test]
    fn recv_batch_preserves_order_with_two_workers() {
        // Two RPC workers reap the batch concurrently, so the recv
        // jobs complete out of submission order; the sequence tags
        // must restore the socket's arrival order through the shared
        // reap/sort/decrypt path.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([5u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192).batch(8).build(
            &ut,
            &[fd],
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for round in 0..4 {
            for i in 0..8u8 {
                let body = [round * 8 + i; 24];
                m.host.push_request(&ut, fd, &wire.encrypt(&body));
            }
            let msgs = io.recv_batch(&mut t);
            assert_eq!(msgs.len(), 8);
            for (i, msg) in msgs.iter().enumerate() {
                assert_eq!(
                    msg,
                    &vec![round * 8 + i as u8; 24],
                    "message {i} of round {round} out of order"
                );
            }
        }
        t.exit();
    }

    #[test]
    fn batched_crypto_saves_serving_cycles_for_the_same_bytes() {
        // The same reap costs fewer serving-core cycles with the
        // batched crypto pipeline, and the plaintexts are identical.
        let run = |batched: bool| {
            // A fresh machine per mode so cache state from the first
            // run cannot skew the second.
            let m = SgxMachine::new(MachineConfig::tiny());
            let e = m.driver.create_enclave(&m, 1 << 20);
            let wire = Arc::new(Session::established([6u8; 16]));
            let ut = ThreadCtx::untrusted(&m, 2);
            let fd = m.host.socket(&ut, 64 << 10);
            let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
                .workers(1, &[3])
                .build();
            let io = ServerIoConfig::with_buf_len(8192)
                .batch(8)
                .batched_crypto(batched)
                .build(&ut, &[fd], IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            for i in 0..8u8 {
                m.host.push_request(&ut, fd, &wire.encrypt(&[i; 24]));
            }
            let c0 = t.now();
            let msgs = io.recv_batch(&mut t);
            let cycles = t.now() - c0;
            t.exit();
            (msgs, cycles)
        };
        let (per_msg, c_per) = run(false);
        let (batched, c_batched) = run(true);
        assert_eq!(per_msg, batched, "crypto mode must not change bytes");
        let full = MachineConfig::tiny().costs.crypto_fixed;
        assert_eq!(c_per - c_batched, 7 * (full - full / 4));
    }

    #[test]
    fn deferred_send_keeps_order_and_hides_the_executor() {
        // With `async_send` the scatter-gather send is reaped on the
        // *next* batch: the bytes must still reach the socket in
        // order, and the serving core must pay less than a
        // synchronous echo loop — the worker's syscall executor runs
        // under the next batch's receive and process time.
        let run = |deferred: bool| {
            let m = SgxMachine::new(MachineConfig::tiny());
            let e = m.driver.create_enclave(&m, 1 << 20);
            let wire = Arc::new(Session::established([7u8; 16]));
            let ut = ThreadCtx::untrusted(&m, 2);
            let fd = m.host.socket(&ut, 64 << 10);
            let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
                .workers(1, &[3])
                .build();
            let io = ServerIoConfig::with_buf_len(8192)
                .batch(4)
                .async_send(deferred)
                .build(&ut, &[fd], IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            let c0 = t.now();
            for round in 0..4u8 {
                for i in 0..4u8 {
                    let body = [round * 4 + i; 24];
                    m.host.push_request(&ut, fd, &wire.encrypt(&body));
                }
                let msgs = io.recv_batch(&mut t);
                assert_eq!(msgs.len(), 4);
                io.send_batch(&mut t, &msgs);
            }
            io.flush(&mut t);
            let cycles = t.now() - c0;
            t.exit();
            let mut echoed = Vec::new();
            while let Some(resp) = m.host.pop_response(fd) {
                echoed.push(wire.decrypt(&resp));
            }
            (echoed, cycles)
        };
        let (sync_out, c_sync) = run(false);
        let (deferred_out, c_deferred) = run(true);
        assert_eq!(sync_out.len(), 16, "every echo must reach the socket");
        assert_eq!(sync_out, deferred_out, "deferred sends must stay in order");
        for (i, msg) in deferred_out.iter().enumerate() {
            assert_eq!(msg, &vec![i as u8; 24]);
        }
        assert!(
            c_deferred < c_sync,
            "deferred reap must hide executor time ({c_deferred} !< {c_sync})"
        );
    }

    #[test]
    fn sharded_echo_routes_replies_back_per_shard() {
        // Requests pushed to distinct shards come back out the same
        // shard's socket, in per-shard arrival order, even though the
        // serve loop sees one concatenated batch.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([9u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fds = m.host.socket_set(&ut, 3, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192).batch(4).build(
            &ut,
            &fds,
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Shard 0: 2 msgs, shard 1: 0 msgs, shard 2: 3 msgs.
        for i in 0..2u8 {
            m.host.push_request(&ut, fds[0], &wire.encrypt(&[i; 24]));
        }
        for i in 0..3u8 {
            m.host
                .push_request(&ut, fds[2], &wire.encrypt(&[0x40 + i; 24]));
        }
        let msgs = io.recv_batch(&mut t);
        assert_eq!(msgs.len(), 5, "both non-empty shards reaped");
        io.send_batch(&mut t, &msgs);
        t.exit();
        let drain = |fd| {
            let mut out = Vec::new();
            while let Some(resp) = m.host.pop_response(fd) {
                out.push(wire.decrypt(&resp));
            }
            out
        };
        assert_eq!(drain(fds[0]), vec![vec![0u8; 24], vec![1u8; 24]]);
        assert_eq!(drain(fds[1]), Vec::<Vec<u8>>::new());
        assert_eq!(
            drain(fds[2]),
            vec![vec![0x40u8; 24], vec![0x41u8; 24], vec![0x42u8; 24]]
        );
    }

    #[test]
    fn adaptive_depth_grows_on_backlog_and_halves_when_idle() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([11u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let io = ServerIoConfig::with_buf_len(32 << 10)
            .adaptive(1, 16)
            .build(&ut, &[fd], IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        assert_eq!(io.shard_depth(0), 1, "adaptive depth starts at the floor");
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // A standing burst: every reap leaves a backlog, so the depth
        // must climb toward the ceiling.
        for _ in 0..40 {
            m.host.push_request(&ut, fd, &wire.encrypt(&[1u8; 16]));
        }
        let mut seen = 0;
        while seen < 40 {
            let got = io.recv_batch(&mut t).len();
            assert!(got > 0, "burst reaps must make progress");
            seen += got;
        }
        assert!(
            io.shard_depth(0) >= 8,
            "backlog must grow the depth (got {})",
            io.shard_depth(0)
        );
        // Idle polls: empty reaps halve the depth back to the floor.
        for _ in 0..8 {
            assert!(io.recv_batch(&mut t).is_empty());
        }
        assert_eq!(io.shard_depth(0), 1, "empty reaps must shrink to the floor");
        t.exit();
    }

    #[test]
    fn sojourn_histogram_records_every_scatter_gather_reap() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([13u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192).batch(4).build(
            &ut,
            &[fd],
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        for i in 0..4u8 {
            // Stamp arrivals on the serving core's clock so the
            // sojourn is measured on one timebase.
            m.host
                .push_request_at(&ut, fd, &wire.encrypt(&[i; 24]), t.now());
        }
        assert_eq!(io.recv_batch(&mut t).len(), 4);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.sojourn.count(), 4, "one sojourn sample per reaped op");
        assert!(d.sojourn.p99() > 0, "reap happens after the arrivals");
        t.exit();
    }

    #[test]
    #[should_panic(expected = "config declares 3 shard(s) but the socket set has 2")]
    fn mismatched_shard_declaration_fails_fast() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ut = ThreadCtx::untrusted(&m, 2);
        let fds = m.host.socket_set(&ut, 2, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let _ = ServerIoConfig::with_buf_len(8192).batch(4).shards(3).build(
            &ut,
            &fds,
            IoPath::Rpc(Arc::new(svc)),
            Arc::new(Session::established([1u8; 16])),
        );
    }

    #[test]
    #[should_panic(expected = "shard map routes over 3 shard(s) but the socket set has 2")]
    fn mismatched_shard_map_fails_fast() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ut = ThreadCtx::untrusted(&m, 2);
        let fds = m.host.socket_set(&ut, 2, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let _ = ServerIoConfig::with_buf_len(8192)
            .batch(4)
            .routed(crate::loadgen::ShardMap::new(3))
            .build(
                &ut,
                &fds,
                IoPath::Rpc(Arc::new(svc)),
                Arc::new(Session::established([1u8; 16])),
            );
    }

    #[test]
    fn idle_shard_steals_the_oldest_contiguous_run() {
        // Shard 0 holds six queued messages at depth two; shard 1 is
        // idle. The balanced reap must return shard 0's oldest run
        // plus a stolen second run — four messages in arrival order —
        // and every reply must still leave shard 0's socket, in order.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([17u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fds = m.host.socket_set(&ut, 2, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192)
            .batch(2)
            .balanced(BalanceConfig {
                repin: false,
                steal: true,
                ..BalanceConfig::default()
            })
            .build(&ut, &fds, IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for i in 0..6u8 {
            m.host.push_request(&ut, fds[0], &wire.encrypt(&[i; 24]));
        }
        let s0 = m.stats.snapshot();
        let msgs = io.recv_batch(&mut t);
        assert_eq!(
            msgs,
            (0..4u8).map(|i| vec![i; 24]).collect::<Vec<_>>(),
            "own run then the stolen run, both in arrival order"
        );
        io.send_batch(&mut t, &msgs);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.shard.replica[0].steals_taken, [0, 1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(d.shard.replica[0].steals_given, [1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            d.shard.replica[0].sojourn[0].count(),
            4,
            "stolen sojourns credit the socket they waited on"
        );
        assert_eq!(d.shard.replica[0].sojourn[1].count(), 0);
        // The remaining two messages drain without a steal (the
        // backlog fits shard 0's own reap exactly... at depth 2).
        let rest = io.recv_batch(&mut t);
        assert_eq!(rest.len(), 2);
        io.send_batch(&mut t, &rest);
        t.exit();
        let mut out = Vec::new();
        while let Some(resp) = m.host.pop_response(fds[0]) {
            out.push(wire.decrypt(&resp));
        }
        assert_eq!(
            out,
            (0..6u8).map(|i| vec![i; 24]).collect::<Vec<_>>(),
            "replies leave the victim's socket in arrival order"
        );
        assert!(
            m.host.pop_response(fds[1]).is_none(),
            "thief sends nothing home"
        );
    }

    #[test]
    fn rebalancer_repins_hot_connections_at_the_fence() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([19u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fds = m.host.socket_set(&ut, 2, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let map = crate::loadgen::ShardMap::new(2);
        let io = ServerIoConfig::with_buf_len(8192)
            .batch(2)
            .balanced(BalanceConfig {
                repin: true,
                steal: false,
                period: 1,
                max_moves: 1,
            })
            .routed(Arc::clone(&map))
            .build(&ut, &fds, IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        // One hot connection plus a lighter one on the same home
        // shard, routed through the map like the load generator does.
        // (The lighter sibling matters: with a single connection the
        // whole weight would move at once, flipping the imbalance
        // instead of closing it, and the overshoot guard refuses.)
        let conn = 7u64;
        let home = map.shard_of(conn);
        let other = (0..64u64)
            .find(|&c| c != conn && crate::loadgen::shard_for(c, 2) == home)
            .unwrap();
        for i in 0..8u8 {
            let shard = map.route(conn);
            assert_eq!(shard, home, "routing is stable before the fence");
            m.host
                .push_request(&ut, fds[shard], &wire.encrypt(&[i; 24]));
        }
        for i in 8..12u8 {
            let shard = map.route(other);
            assert_eq!(shard, home);
            m.host
                .push_request(&ut, fds[shard], &wire.encrypt(&[i; 24]));
        }
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        // A depth-2 reap leaves a 10-deep backlog on the home shard
        // and nothing on its sibling; all 12 arrival weights sit on
        // the home shard. The period-1 rebalancer must move the hot
        // connection (weight 8, under the 12-weight gap) to the cold
        // shard at the reap boundary — and only that one, since the
        // move flips the gap negative.
        let msgs = io.recv_batch(&mut t);
        io.send_batch(&mut t, &msgs);
        let d = m.stats.snapshot() - s0;
        assert_ne!(map.shard_of(conn), home, "the hot connection moved");
        assert_eq!(map.shard_of(other), home, "the light one stayed");
        let mut want = [0u64; 8];
        want[home] = 1;
        assert_eq!(d.shard.replica[0].migrations, want);
        assert_eq!(
            d.shard.replica[0].backlog[home], 10,
            "backlog gauge reads the residue"
        );
        // Future arrivals land on the new shard; queued ones drain
        // from the old socket untouched.
        let moved = map.route(conn);
        assert_ne!(moved, home);
        while !io.recv_batch(&mut t).is_empty() {}
        t.exit();
    }

    #[test]
    fn rekey_interval_rotates_at_the_fence_without_losing_replies() {
        // With `rekey_every(4)` the epoch must advance once per four
        // decrypted requests, at reap boundaries only, and every
        // message must still decrypt to the same bytes a static-key
        // server would produce.
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([21u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192)
            .batch(4)
            .rekey_every(4)
            .build(&ut, &[fd], IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        let mut out = Vec::new();
        for round in 0..4u8 {
            for i in 0..4u8 {
                m.host
                    .push_request(&ut, fd, &wire.encrypt(&[round * 4 + i; 24]));
            }
            let msgs = io.recv_batch(&mut t);
            assert_eq!(msgs.len(), 4, "rotation must not stall the reap");
            io.send_batch(&mut t, &msgs);
            // The client reads each round's replies while their epoch
            // is still buffered — a real client tracks the server's
            // announcements, it does not decrypt a whole run at once.
            while let Some(resp) = m.host.pop_response(fd) {
                out.push(wire.decrypt(&resp));
            }
        }
        t.exit();
        let d = m.stats.snapshot() - s0;
        // Fences run before reaps 2, 3, and 4 see `served >= 4`.
        assert_eq!(d.rekeys, 3, "one rotation per elapsed interval");
        assert_eq!(d.auth_failures, 0, "every epoch stayed in the buffer");
        assert!(wire.epoch() >= 3, "the session's current epoch advanced");
        assert_eq!(
            out,
            (0..16u8).map(|i| vec![i; 24]).collect::<Vec<_>>(),
            "every reply decrypts across rotations"
        );
    }

    #[test]
    fn revoke_drops_queued_traffic_and_ends_the_blocking_wait() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([23u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 2);
        let fd = m.host.socket(&ut, 64 << 10);
        let svc = eleos_rpc::with_syscalls(eleos_rpc::RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let io = ServerIoConfig::with_buf_len(8192).batch(4).build(
            &ut,
            &[fd],
            IoPath::Rpc(Arc::new(svc)),
            Arc::clone(&wire),
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for i in 0..6u8 {
            m.host.push_request(&ut, fd, &wire.encrypt(&[i; 24]));
        }
        let s0 = m.stats.snapshot();
        let queued = io.revoke(&mut t);
        assert_eq!(queued, 6, "revocation reports the traffic it dropped");
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.revocations, 1);
        assert_eq!(d.auth_failures, 6, "every queued message was rejected");
        assert_eq!(wire.state(), SessionState::Revoked);
        assert_eq!(
            io.recv_msg_blocking(&mut t),
            None,
            "the blocking wait must not spin on a dead session"
        );
        assert!(io.recv_batch(&mut t).is_empty());
        t.exit();
    }
}
