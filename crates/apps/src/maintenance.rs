//! The fleet maintenance worker thread.
//!
//! [`FleetKvs::maintenance_tick`] is the whole plane — failure
//! detection, background engine byte-work, and chunked delta
//! snapshots (see the `fleet_io` module docs). This module only adds
//! the *driver*: a condvar-interruptible worker on the maintenance
//! core, the same shape as the SUVM swapper
//! ([`Swapper`](eleos_core::Swapper)).
//!
//! [`MaintenanceCtx::spawn`] runs ticks on a real background thread;
//! deterministic experiments and the equivalence tests instead call
//! [`FleetKvs::maintenance_tick`] at chosen points — the tick is the
//! unit of determinism, the thread is just a pacemaker.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fleet_io::FleetKvs;

/// Handle to a running maintenance worker; stops it on drop.
pub struct MaintenanceCtx {
    state: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl MaintenanceCtx {
    /// Spawns the worker for `fleet`, ticking every `interval`. The
    /// inter-tick sleep is a condvar wait, so dropping the handle
    /// stops the thread promptly rather than after up to a full
    /// interval. The tick itself is a no-op when the fleet was built
    /// without [`FleetConfig::with_maintenance`]
    /// (see [`crate::fleet_io::FleetConfig::with_maintenance`]).
    #[must_use]
    pub fn spawn(fleet: &Arc<FleetKvs>, interval: Duration) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let fleet = Arc::clone(fleet);
        let thread = std::thread::spawn(move || {
            let (stop, wake) = &*state2;
            loop {
                if *stop.lock().unwrap() {
                    return;
                }
                fleet.maintenance_tick();
                let guard = stop.lock().unwrap();
                let (guard, _) = wake
                    .wait_timeout_while(guard, interval, |stopped| !*stopped)
                    .unwrap();
                if *guard {
                    return;
                }
            }
        });
        Self {
            state,
            thread: Some(thread),
        }
    }

    /// Stops the thread and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (stop, wake) = &*self.state;
        *stop.lock().unwrap() = true;
        wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MaintenanceCtx {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_crypto::gcm::AesGcm128;
    use eleos_crypto::Sealer;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};
    use eleos_enclave::thread::ThreadCtx;
    use eleos_rpc::{with_syscalls, RpcService};

    use crate::fleet_io::{FleetConfig, FleetKvs, MaintenanceConfig};
    use crate::io::{IoPath, ServerIoConfig};
    use crate::wire::Session;

    #[test]
    fn worker_ticks_and_stops_promptly() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ut = ThreadCtx::untrusted(&m, 1);
        let fds = vec![m.host.socket(&ut, 256 << 10)];
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(2, &[2, 3])
            .build();
        let wire = Arc::new(Session::established([9u8; 16]));
        let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x44u8; 16]));
        let fk = Arc::new(FleetKvs::new(
            &m,
            &fds,
            ServerIoConfig::with_buf_len(16 << 10).batch(4).shards(1),
            IoPath::Rpc(Arc::new(svc)),
            wire,
            sealer,
            FleetConfig::small(2).with_maintenance(MaintenanceConfig::default()),
            |ctx, kvs| kvs.set(ctx, b"k", b"v"),
        ));
        let worker = MaintenanceCtx::spawn(&fk, Duration::from_millis(1));
        // The worker's delta rounds run concurrently with this
        // thread; wait until at least one landed.
        while m.stats.snapshot().maint_chunks == 0 {
            std::thread::yield_now();
        }
        worker.stop();
        assert!(m.stats.snapshot().maint_chunks > 0);
    }
}
