//! Server applications from the Eleos (EuroSys'17) evaluation.
//!
//! Each server is written once against the [`space::DataSpace`]
//! abstraction and the [`io::IoPath`] syscall abstraction, so the same
//! code runs in every configuration the paper compares:
//!
//! | paper configuration | `DataSpace` | `IoPath` |
//! |---|---|---|
//! | native (no SGX) | `Untrusted` | `Native` |
//! | vanilla SGX / Graphene | `Enclave` | `Ocall` |
//! | Eleos (RPC only) | `Enclave` | `Rpc` |
//! | Eleos (RPC + SUVM) | `Suvm` | `Rpc` |
//! | Eleos (direct access) | `Suvm{direct}` | `Rpc` |
//!
//! Applications:
//! - [`param_server`] — the §2 motivation workload (Figs 1, 2, 6);
//! - [`kvs`] — the memcached-style store of §5.1 (Fig 11, Table 4),
//!   with the paper's clear-metadata/secure-kv split over pluggable
//!   [`storage`] engines: the memcached-style [`slab`] allocator
//!   (optionally with a fence-time slab rebalancer) or a TTL-bucketed
//!   append-only segment store;
//! - [`face`] — the LBP face-verification server of §5.2 (Fig 10);
//! - [`loadgen`] — seeded client load (memaslap-style for the KVS);
//! - [`wire`] — the AES-CTR wire [`Session`](wire::Session) (§5):
//!   attestation handshake, epoch key rotation, revocation.

pub mod face;
pub mod fleet_io;
pub mod io;
pub mod kvs;
pub mod loadgen;
pub mod maintenance;
pub mod param_server;
pub mod slab;
pub mod space;
pub mod storage;
pub mod text_protocol;
pub mod wire;

pub use io::{IoPath, ServerIo, ServerIoConfig};
pub use space::DataSpace;
pub use wire::{Session, SessionState};
