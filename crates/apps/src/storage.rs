//! Pluggable storage engines behind the KVS front-end.
//!
//! The seed's KVS hard-wired memcached's static slab classes; this
//! module is the production storage tier grown on top of it, behind
//! one [`StorageEngine`] seam:
//!
//! - [`SlabEngine`] — the original slab/LRU store, now with an
//!   optional **slab rebalancer**: per-class hit/eviction windows
//!   decide, at sub-batch fences only, when to reassign a whole 1 MiB
//!   slab from a cold class to a starved ("calcified") one, relocating
//!   the donor slab's live items to sibling slabs first (memcached's
//!   slab automover).
//! - [`SegmentEngine`] — a TTL-centric append-only segment store
//!   (Pelikan Segcache's design): items append into per-TTL-bucket
//!   segments, whole segments whose every item has expired are
//!   reclaimed in O(segment), and memory pressure is relieved by
//!   *merge-based eviction* — compact a bucket's oldest segments,
//!   keeping the most-requested survivors.
//!
//! Both engines keep the paper's §5.1 split: hash-chain/LRU/expiry
//! metadata lives in the clear metadata space; keys, values and their
//! sizes live in the secure data space, every access charged through
//! [`DataSpace`]. Engine maintenance (rebalance moves, merges, segment
//! expiry) runs **only** inside [`StorageEngine::fence`], which the
//! serving path calls between batches — never mid-batch, reusing the
//! fence discipline of shard rebalance and fleet failover.
//!
//! In **background mode** ([`StorageEngine::set_background`]) the
//! fence keeps that role but sheds the byte-work: it only publishes
//! gauges and decays demand windows, while the relocation/merge/expiry
//! copies run in [`StorageEngine::maintenance_tick`] on the
//! maintenance plane's core — the Eleos move of taking stall-inducing
//! work off the serving threads. Fence-synchronous maintenance charges
//! its cycles to the `maint_stall_cycles` stat so benches can show the
//! stall disappearing from the serving cores.

use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::{Stats, MAX_STORAGE_CLASSES};

use crate::param_server::hash64;
use crate::slab::{SlabPool, SLAB_BYTES};
use crate::space::DataSpace;

/// Metadata record size (shared by both engines' index nodes).
pub(crate) const META_BYTES: usize = 48;

// Slab-engine metadata record layout.
const M_NEXT: u64 = 0;
const M_LRU_PREV: u64 = 8;
const M_LRU_NEXT: u64 = 16;
const M_KV_ADDR: u64 = 24;
const M_KV_CLASS: u64 = 32;
const M_EXPIRY: u64 = 36;
const M_VERSION: u64 = 40;

// Segment-engine index node layout (same 48-byte records, no LRU
// links — segment eviction is merge-based, not LRU-based).
const S_NEXT: u64 = 0;
const S_ITEM: u64 = 8;
const S_SEG: u64 = 16;
const S_FREQ: u64 = 20;
const S_EXPIRY: u64 = 24;
const S_FLAGS: u64 = 28;
const S_VERSION: u64 = 32;

// Segment-record roles (`S_FLAGS`): ordinary records, the chained
// pieces of a value too large for one segment, and the head record
// holding the spill descriptor.
const FLAG_PLAIN: u32 = 0;
const FLAG_PART: u32 = 1;
const FLAG_HEAD: u32 = 2;

/// Sanity marker in a spill head's 16-byte descriptor ("SPLL").
const SPILL_MAGIC: u32 = 0x5350_4C4C;

/// Free segments the background tick tries to keep on hand so the
/// serving-path allocator almost never reclaims inline.
const SEG_FREE_RESERVE: usize = 2;

/// The derived key of spill part `i` of `key`: a reserved `0xFF`
/// prefix keeps part keys out of the client namespace.
fn spill_part_key(key: &[u8], i: u32) -> Vec<u8> {
    let mut pk = Vec::with_capacity(key.len() + 5);
    pk.push(0xFF);
    pk.extend_from_slice(key);
    pk.extend_from_slice(&i.to_le_bytes());
    pk
}

/// Null metadata pointer.
pub(crate) const NIL: u64 = 0;

/// Simulated wall-clock seconds on the calling core.
pub(crate) fn now_secs(ctx: &ThreadCtx) -> u32 {
    (ctx.now() as f64 / eleos_sim::costs::CPU_HZ) as u32
}

/// Fixed-size allocator for metadata records in the (clear) metadata
/// space.
pub(crate) struct MetaPool {
    space: DataSpace,
    free: Vec<u64>,
    block: usize,
}

impl MetaPool {
    pub(crate) fn new(space: DataSpace) -> Self {
        Self {
            space,
            free: Vec::new(),
            block: 64 << 10,
        }
    }

    pub(crate) fn alloc(&mut self) -> u64 {
        if let Some(a) = self.free.pop() {
            return a;
        }
        let base = self.space.alloc(self.block);
        let n = self.block / META_BYTES;
        for i in (1..n).rev() {
            self.free.push(base + (i * META_BYTES) as u64);
        }
        // Never hand out address 0 as a record (0 is the NIL marker);
        // the first record of the first block is skipped if it would
        // be 0.
        let first = base;
        if first == NIL {
            return self.free.pop().expect("block has >1 record");
        }
        first
    }

    pub(crate) fn free(&mut self, addr: u64) {
        self.free.push(addr);
    }
}

/// Which storage engine a server runs, with its tuning.
#[derive(Debug, Clone)]
pub enum EngineConfig {
    /// The memcached slab/LRU engine; `rebalance: None` is bit- and
    /// cycle-identical to the seed's store.
    Slab {
        /// Slab rebalancer tuning; `None` disables it entirely.
        rebalance: Option<RebalanceConfig>,
    },
    /// The TTL-bucketed append-only segment engine.
    Segment(SegmentConfig),
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::Slab { rebalance: None }
    }
}

impl EngineConfig {
    /// Short label used in experiment headers and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EngineConfig::Slab { rebalance: None } => "slab",
            EngineConfig::Slab { rebalance: Some(_) } => "slab-rebal",
            EngineConfig::Segment(_) => "segment",
        }
    }
}

/// Slab rebalancer tuning.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Attempt moves every this many fences (1 = every fence).
    pub fence_period: u32,
    /// A class is *starved* when its free chunks drop below
    /// `chunks_per_slab / starve_frac` (minimum 1).
    pub starve_frac: usize,
    /// Upper bound on whole-slab moves per eligible fence.
    pub max_moves_per_fence: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            fence_period: 1,
            starve_frac: 8,
            max_moves_per_fence: 1,
        }
    }
}

/// Segment-store tuning.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Bytes per append-only segment.
    pub segment_bytes: usize,
    /// Upper TTL bound (seconds) of each TTL bucket; one extra bucket
    /// catches longer-lived and never-expiring items. Must be
    /// ascending.
    pub ttl_bounds: Vec<u32>,
    /// Sealed segments compacted per merge pass (survivors are ranked
    /// by request frequency and repacked into one segment fewer).
    pub merge_segments: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 128 << 10,
            ttl_bounds: vec![16, 256, 4096],
            merge_segments: 4,
        }
    }
}

/// One storage engine behind the KVS front-end.
///
/// The item callback `StorageEngine::for_each` feeds:
/// `(key, value, version, expiry)`.
pub type ItemVisitor<'a> = dyn FnMut(&[u8], &[u8], u64, u32) + 'a;

/// `expiry` is an absolute deadline in simulated seconds (0 = never);
/// `version` is the caller's write stamp (the fleet tier's fence-epoch
/// interval) used for last-writer-wins restore merges.
pub trait StorageEngine: Send {
    /// Short label for stats and experiment output.
    fn label(&self) -> &'static str;

    /// One-time index initialization (zeroes the bucket heads).
    fn init(&self, ctx: &mut ThreadCtx);

    /// Inserts or replaces `key`.
    fn set(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8], expiry: u32, version: u64);

    /// Looks `key` up. Expired items are lazily deleted and read as
    /// misses.
    fn get(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>>;

    /// Deletes `key`; returns whether it existed.
    fn delete(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> bool;

    /// The write stamp of `key`'s current copy, if indexed (expiry is
    /// *not* checked — restore merges compare stamps even on items
    /// about to lapse).
    fn version_of(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<u64>;

    /// Number of indexed items.
    fn len(&self) -> u64;

    /// Whether no items are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted under memory pressure so far.
    fn evictions(&self) -> u64;

    /// Items dropped because their TTL deadline passed.
    fn expired(&self) -> u64;

    /// Bytes of secure pool acquired from the data space.
    fn pool_bytes(&self) -> u64;

    /// Sub-batch fence hook: the only place engine maintenance
    /// (rebalance moves, proactive segment expiry, gauge publishing)
    /// may run. Never called mid-batch.
    fn fence(&mut self, ctx: &mut ThreadCtx);

    /// Visits every live, unexpired item (index order) with
    /// `(key, value, version, expiry)`.
    fn for_each(&self, ctx: &mut ThreadCtx, f: &mut ItemVisitor);

    /// Engine-specific metadata for the snapshot's `storage-meta`
    /// section (layout parameters a restore-side can sanity-check).
    fn meta_blob(&self) -> Vec<u8>;

    /// Switches between fence-synchronous maintenance (the default)
    /// and background mode, where fences only publish counters and
    /// the byte-work waits for [`Self::maintenance_tick`].
    fn set_background(&mut self, _on: bool) {}

    /// One background-maintenance pass, run by the maintenance plane
    /// with a context pinned to its own core — never the serving
    /// path's. Returns whether any work ran. A no-op unless the
    /// engine is in background mode.
    fn maintenance_tick(&mut self, _ctx: &mut ThreadCtx) -> bool {
        false
    }
}

/// Builds the configured engine over the given spaces.
#[must_use]
pub fn build_engine(
    cfg: &EngineConfig,
    meta_space: DataSpace,
    data_space: DataSpace,
    mem_limit: u64,
    buckets: u64,
) -> Box<dyn StorageEngine> {
    match cfg {
        EngineConfig::Slab { rebalance } => Box::new(SlabEngine::new(
            meta_space,
            data_space,
            mem_limit,
            buckets,
            rebalance.clone(),
        )),
        EngineConfig::Segment(seg) => Box::new(SegmentEngine::new(
            meta_space,
            data_space,
            mem_limit,
            buckets,
            seg.clone(),
        )),
    }
}

// ====================================================================
// Slab engine
// ====================================================================

/// Per-class feedback window (host-side bookkeeping only — reading it
/// costs no simulated cycles).
#[derive(Debug, Default, Clone, Copy)]
struct ClassWindow {
    sets: u64,
    hits: u64,
    evictions: u64,
}

/// The memcached slab/LRU engine (the seed's store) with an optional
/// fence-time slab rebalancer.
pub struct SlabEngine {
    meta: MetaPool,
    meta_space: DataSpace,
    slab: SlabPool,
    buckets: u64,
    heads: u64,
    lru_head: u64,
    lru_tail: u64,
    items: u64,
    evictions: u64,
    expired: u64,
    rebalance: Option<RebalanceConfig>,
    /// Decaying per-class demand windows (only maintained when the
    /// rebalancer is on).
    window: Vec<ClassWindow>,
    /// Cumulative per-class totals, published as gauges at fences.
    totals: Vec<ClassWindow>,
    fences: u32,
    /// Background mode: fences publish only; moves run in the tick.
    background: bool,
}

impl SlabEngine {
    fn new(
        meta_space: DataSpace,
        data_space: DataSpace,
        mem_limit: u64,
        buckets: u64,
        rebalance: Option<RebalanceConfig>,
    ) -> Self {
        let buckets = buckets.next_power_of_two();
        let heads = meta_space.alloc((buckets * 8) as usize);
        let slab = SlabPool::new(data_space, mem_limit);
        let n = slab.class_count();
        Self {
            meta: MetaPool::new(meta_space.clone()),
            meta_space,
            slab,
            buckets,
            heads,
            lru_head: NIL,
            lru_tail: NIL,
            items: 0,
            evictions: 0,
            expired: 0,
            rebalance,
            window: vec![ClassWindow::default(); n],
            totals: vec![ClassWindow::default(); n],
            fences: 0,
            background: false,
        }
    }

    fn bucket_addr(&self, key: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.heads + (hash64(h) & (self.buckets - 1)) * 8
    }

    fn key_matches(&self, ctx: &mut ThreadCtx, kv_addr: u64, key: &[u8]) -> bool {
        let klen = self.slab.space().read_u32(ctx, kv_addr) as usize;
        if klen != key.len() {
            return false;
        }
        let mut stored = vec![0u8; klen];
        self.slab.space().read(ctx, kv_addr + 8, &mut stored);
        stored == key
    }

    fn find(&self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<(u64, u64)> {
        let bucket = self.bucket_addr(key);
        let mut prev = NIL;
        let mut node = self.meta_space.read_u64(ctx, bucket);
        while node != NIL {
            let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
            if self.key_matches(ctx, kv, key) {
                return Some((node, prev));
            }
            prev = node;
            node = self.meta_space.read_u64(ctx, node + M_NEXT);
        }
        None
    }

    fn lru_unlink(&mut self, ctx: &mut ThreadCtx, node: u64) {
        let prev = self.meta_space.read_u64(ctx, node + M_LRU_PREV);
        let next = self.meta_space.read_u64(ctx, node + M_LRU_NEXT);
        if prev != NIL {
            self.meta_space.write_u64(ctx, prev + M_LRU_NEXT, next);
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.meta_space.write_u64(ctx, next + M_LRU_PREV, prev);
        } else {
            self.lru_tail = prev;
        }
    }

    fn lru_push_front(&mut self, ctx: &mut ThreadCtx, node: u64) {
        self.meta_space.write_u64(ctx, node + M_LRU_PREV, NIL);
        self.meta_space
            .write_u64(ctx, node + M_LRU_NEXT, self.lru_head);
        if self.lru_head != NIL {
            self.meta_space
                .write_u64(ctx, self.lru_head + M_LRU_PREV, node);
        }
        self.lru_head = node;
        if self.lru_tail == NIL {
            self.lru_tail = node;
        }
    }

    fn chain_unlink(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64, prev: u64) {
        let next = self.meta_space.read_u64(ctx, node + M_NEXT);
        if prev == NIL {
            self.meta_space.write_u64(ctx, self.bucket_addr(key), next);
        } else {
            self.meta_space.write_u64(ctx, prev + M_NEXT, next);
        }
    }

    /// Removes the LRU tail item to reclaim a chunk.
    fn evict_one(&mut self, ctx: &mut ThreadCtx) -> bool {
        let victim = self.lru_tail;
        if victim == NIL {
            return false;
        }
        let kv = self.meta_space.read_u64(ctx, victim + M_KV_ADDR);
        let class = self.meta_space.read_u32(ctx, victim + M_KV_CLASS) as usize;
        // Need the key to unlink from its chain.
        let klen = self.slab.space().read_u32(ctx, kv) as usize;
        let mut key = vec![0u8; klen];
        self.slab.space().read(ctx, kv + 8, &mut key);
        let (node, prev) = self.find(ctx, &key).expect("LRU item must be chained");
        debug_assert_eq!(node, victim);
        self.chain_unlink(ctx, &key, node, prev);
        self.lru_unlink(ctx, victim);
        self.slab.free(class, kv);
        self.meta.free(victim);
        self.items -= 1;
        self.evictions += 1;
        if self.rebalance.is_some() {
            self.window[class].evictions += 1;
            self.totals[class].evictions += 1;
        }
        true
    }

    fn write_record(&mut self, ctx: &mut ThreadCtx, kv: u64, key: &[u8], value: &[u8]) {
        let mut rec = Vec::with_capacity(8 + key.len() + value.len());
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        self.slab.space().write(ctx, kv, &rec);
    }

    /// Host-side accounting of a set/hit against the class serving
    /// `record_len` (no simulated reads — `class_of` is pure).
    fn note(&mut self, record_len: usize, hit: bool) {
        if self.rebalance.is_none() {
            return;
        }
        if let Some(c) = self.slab.class_of(record_len) {
            if hit {
                self.window[c].hits += 1;
                self.totals[c].hits += 1;
            } else {
                self.window[c].sets += 1;
                self.totals[c].sets += 1;
            }
        }
    }

    // --- The rebalancer -------------------------------------------

    /// Whether class `c` is starved: demand in the current window and
    /// fewer free chunks than a fraction of one slab's worth.
    fn starved(&self, c: usize) -> bool {
        let cfg = self.rebalance.as_ref().expect("rebalancer on");
        let threshold = (self.slab.chunks_per_slab(c) / cfg.starve_frac).max(1);
        let w = &self.window[c];
        (w.sets + w.evictions) > 0 && self.slab.free_chunks(c) < threshold
    }

    /// Picks `(donor_class, slab_base)` able to give a whole slab to
    /// `needy`: the donor must be able to absorb the victim slab's
    /// live items into its *other* free chunks. Prefers the donor with
    /// the least window demand, then the emptiest slab.
    fn pick_donor(&self, needy: usize) -> Option<(usize, u64)> {
        let mut best: Option<(u64, usize, usize, u64)> = None; // (demand, live, class, base)
        for d in 0..self.slab.class_count() {
            if d == needy || self.starved(d) {
                continue;
            }
            let w = &self.window[d];
            let demand = w.sets + w.evictions + w.hits;
            for base in self.slab.slabs_in(d) {
                let free_in = self.slab.free_chunks_in_slab(d, base);
                let live = self.slab.chunks_per_slab(d) - free_in;
                // Survivors must fit in the donor's remaining free
                // chunks outside this slab.
                if live > self.slab.free_chunks(d) - free_in {
                    continue;
                }
                let cand = (demand, live, d, base);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, _, d, base)| (d, base))
    }

    /// Relocates every live item of class `donor` inside the moving
    /// slab to sibling chunks, updating its metadata pointer. Returns
    /// the number relocated.
    fn relocate_out(&mut self, ctx: &mut ThreadCtx, donor: usize, base: u64) -> u64 {
        let end = base + SLAB_BYTES as u64;
        let mut moved = 0u64;
        for b in 0..self.buckets {
            let mut node = self.meta_space.read_u64(ctx, self.heads + b * 8);
            while node != NIL {
                let class = self.meta_space.read_u32(ctx, node + M_KV_CLASS) as usize;
                let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
                if class == donor && kv >= base && kv < end {
                    let dst = self
                        .slab
                        .alloc_in_class(donor)
                        .expect("donor guaranteed spare chunks");
                    // Copy the whole record (sizes + key + value).
                    let klen = self.slab.space().read_u32(ctx, kv) as usize;
                    let vlen = self.slab.space().read_u32(ctx, kv + 4) as usize;
                    let mut rec = vec![0u8; 8 + klen + vlen];
                    self.slab.space().read(ctx, kv, &mut rec);
                    self.slab.space().write(ctx, dst, &rec);
                    self.meta_space.write_u64(ctx, node + M_KV_ADDR, dst);
                    self.slab.retire_chunk();
                    moved += 1;
                }
                node = self.meta_space.read_u64(ctx, node + M_NEXT);
            }
        }
        moved
    }

    /// One rebalance attempt: find the most-starved class and a donor
    /// slab, strip + relocate + adopt. Returns whether a move ran.
    fn try_rebalance(&mut self, ctx: &mut ThreadCtx) -> bool {
        let needy = (0..self.slab.class_count())
            .filter(|&c| self.starved(c))
            .max_by_key(|&c| (self.window[c].evictions, self.window[c].sets));
        let Some(needy) = needy else {
            return false;
        };
        let Some((donor, base)) = self.pick_donor(needy) else {
            return false;
        };
        // Order matters: strip the old class's free chunks *first* so
        // it can never hand out a chunk inside the departing slab
        // (the no-stranded-chunk invariant), then relocate survivors,
        // then re-carve under the new class.
        self.slab.remove_slab_free_chunks(donor, base);
        let moved = self.relocate_out(ctx, donor, base);
        self.slab.adopt_slab(needy, base);
        ctx.compute(ctx.machine.cfg.costs.slab_move);
        Stats::bump(&ctx.machine.stats.slab_moves);
        Stats::add(&ctx.machine.stats.slab_items_relocated, moved);
        true
    }

    /// Exponential decay keeps the windows tracking *recent* demand,
    /// so a long-cold class eventually looks like a donor. Runs after
    /// the byte-work (synchronous fence or background tick) so the
    /// rebalancer always acts on pre-decay demand.
    fn decay_windows(&mut self) {
        for w in &mut self.window {
            w.sets /= 2;
            w.hits /= 2;
            w.evictions /= 2;
        }
    }

    /// Publishes the cumulative per-class totals as gauges.
    fn publish_gauges(&self, ctx: &ThreadCtx) {
        let st = &ctx.machine.stats.storage;
        for (c, t) in self.totals.iter().enumerate().take(MAX_STORAGE_CLASSES) {
            Stats::set(&st.hits[c], t.hits);
            Stats::set(&st.evictions[c], t.evictions);
            Stats::set(&st.sets[c], t.sets);
        }
    }
}

impl StorageEngine for SlabEngine {
    fn label(&self) -> &'static str {
        if self.rebalance.is_some() {
            "slab-rebal"
        } else {
            "slab"
        }
    }

    fn init(&self, ctx: &mut ThreadCtx) {
        let zeros = vec![0u8; 4096];
        let len = self.buckets * 8;
        let mut off = 0u64;
        while off < len {
            let n = ((len - off) as usize).min(4096);
            self.meta_space.write(ctx, self.heads + off, &zeros[..n]);
            off += n as u64;
        }
    }

    fn set(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8], expiry: u32, version: u64) {
        let record_len = 8 + key.len() + value.len();
        self.note(record_len, false);
        if let Some((node, prev)) = self.find(ctx, key) {
            let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
            let class = self.meta_space.read_u32(ctx, node + M_KV_CLASS) as usize;
            if self.slab.chunk_size(class) >= record_len {
                // Overwrite in place.
                self.write_record(ctx, kv, key, value);
                self.meta_space.write_u32(ctx, node + M_EXPIRY, expiry);
                self.meta_space.write_u64(ctx, node + M_VERSION, version);
                self.lru_unlink(ctx, node);
                self.lru_push_front(ctx, node);
                return;
            }
            // Wrong class: drop and reinsert.
            self.chain_unlink(ctx, key, node, prev);
            self.lru_unlink(ctx, node);
            self.slab.free(class, kv);
            self.meta.free(node);
            self.items -= 1;
        }
        // Allocate, evicting LRU victims if the pool is full.
        let (class, kv) = loop {
            match self.slab.alloc(record_len) {
                Some(x) => break x,
                None => {
                    assert!(self.evict_one(ctx), "pool exhausted and LRU empty");
                }
            }
        };
        self.write_record(ctx, kv, key, value);
        let node = self.meta.alloc();
        let bucket = self.bucket_addr(key);
        let head = self.meta_space.read_u64(ctx, bucket);
        self.meta_space.write_u64(ctx, node + M_NEXT, head);
        self.meta_space.write_u64(ctx, node + M_KV_ADDR, kv);
        self.meta_space
            .write_u32(ctx, node + M_KV_CLASS, class as u32);
        self.meta_space.write_u32(ctx, node + M_EXPIRY, expiry);
        self.meta_space.write_u64(ctx, node + M_VERSION, version);
        self.meta_space.write_u64(ctx, bucket, node);
        self.lru_push_front(ctx, node);
        self.items += 1;
    }

    fn get(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        let (node, prev) = self.find(ctx, key)?;
        let expiry = self.meta_space.read_u32(ctx, node + M_EXPIRY);
        if expiry != 0 && now_secs(ctx) >= expiry {
            let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
            let class = self.meta_space.read_u32(ctx, node + M_KV_CLASS) as usize;
            self.chain_unlink(ctx, key, node, prev);
            self.lru_unlink(ctx, node);
            self.slab.free(class, kv);
            self.meta.free(node);
            self.items -= 1;
            self.expired += 1;
            Stats::bump(&ctx.machine.stats.expired_items);
            return None;
        }
        let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
        let vlen = self.slab.space().read_u32(ctx, kv + 4) as usize;
        let mut value = vec![0u8; vlen];
        self.slab
            .space()
            .read(ctx, kv + 8 + key.len() as u64, &mut value);
        self.lru_unlink(ctx, node);
        self.lru_push_front(ctx, node);
        self.note(8 + key.len() + vlen, true);
        Some(value)
    }

    fn delete(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> bool {
        let Some((node, prev)) = self.find(ctx, key) else {
            return false;
        };
        let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
        let class = self.meta_space.read_u32(ctx, node + M_KV_CLASS) as usize;
        self.chain_unlink(ctx, key, node, prev);
        self.lru_unlink(ctx, node);
        self.slab.free(class, kv);
        self.meta.free(node);
        self.items -= 1;
        true
    }

    fn version_of(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<u64> {
        let (node, _) = self.find(ctx, key)?;
        Some(self.meta_space.read_u64(ctx, node + M_VERSION))
    }

    fn len(&self) -> u64 {
        self.items
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn expired(&self) -> u64 {
        self.expired
    }

    fn pool_bytes(&self) -> u64 {
        self.slab.slab_bytes
    }

    fn fence(&mut self, ctx: &mut ThreadCtx) {
        let Some(cfg) = self.rebalance.clone() else {
            // Rebalancer off: the fence is free (bit- and
            // cycle-identical to the seed's store).
            return;
        };
        self.fences += 1;
        self.publish_gauges(ctx);
        if !self.fences.is_multiple_of(cfg.fence_period) {
            return;
        }
        if self.background {
            // Background mode: the fence only publishes. Byte-work
            // *and* window decay move to the maintenance tick so the
            // tick sees the same pre-decay demand the synchronous
            // fence would have acted on.
            return;
        }
        // Fence-synchronous mode: the relocation byte-work runs
        // right here, and every cycle of it stalls the serving
        // core.
        let t0 = ctx.now();
        for _ in 0..cfg.max_moves_per_fence {
            if !self.try_rebalance(ctx) {
                break;
            }
        }
        Stats::add(&ctx.machine.stats.maint_stall_cycles, ctx.now() - t0);
        self.decay_windows();
    }

    fn set_background(&mut self, on: bool) {
        self.background = on;
    }

    fn maintenance_tick(&mut self, ctx: &mut ThreadCtx) -> bool {
        let Some(cfg) = self.rebalance.clone() else {
            return false;
        };
        if !self.background {
            return false;
        }
        let mut did = false;
        for _ in 0..cfg.max_moves_per_fence {
            if !self.try_rebalance(ctx) {
                break;
            }
            did = true;
        }
        self.decay_windows();
        did
    }

    fn for_each(&self, ctx: &mut ThreadCtx, f: &mut ItemVisitor) {
        let now = now_secs(ctx);
        for b in 0..self.buckets {
            let mut node = self.meta_space.read_u64(ctx, self.heads + b * 8);
            while node != NIL {
                let kv = self.meta_space.read_u64(ctx, node + M_KV_ADDR);
                let version = self.meta_space.read_u64(ctx, node + M_VERSION);
                let expiry = self.meta_space.read_u32(ctx, node + M_EXPIRY);
                if expiry == 0 || now < expiry {
                    let klen = self.slab.space().read_u32(ctx, kv) as usize;
                    let vlen = self.slab.space().read_u32(ctx, kv + 4) as usize;
                    let mut key = vec![0u8; klen];
                    self.slab.space().read(ctx, kv + 8, &mut key);
                    let mut value = vec![0u8; vlen];
                    self.slab
                        .space()
                        .read(ctx, kv + 8 + klen as u64, &mut value);
                    f(&key, &value, version, expiry);
                }
                node = self.meta_space.read_u64(ctx, node + M_NEXT);
            }
        }
    }

    fn meta_blob(&self) -> Vec<u8> {
        let mut blob = Vec::new();
        blob.extend_from_slice(&self.slab.slab_bytes.to_le_bytes());
        blob.extend_from_slice(&(self.slab.class_count() as u32).to_le_bytes());
        blob
    }
}

// ====================================================================
// Segment engine
// ====================================================================

/// Host-side descriptor of one append-only segment.
#[derive(Debug, Clone)]
struct Segment {
    base: u64,
    /// Append offset (bytes written so far).
    write: usize,
    /// Records appended (live + dead).
    appended: u64,
    /// Records still referenced by the index.
    live: u64,
    /// Latest expiry deadline among appended items (only meaningful
    /// while `all_ttl`).
    max_expiry: u32,
    /// Whether *every* appended item carries a TTL — only then can the
    /// whole segment be reclaimed by deadline alone.
    all_ttl: bool,
    sealed: bool,
}

impl Segment {
    fn fresh(base: u64) -> Self {
        Self {
            base,
            write: 0,
            appended: 0,
            live: 0,
            max_expiry: 0,
            all_ttl: true,
            sealed: false,
        }
    }
}

/// Per-TTL-bucket state: the open segment plus the sealed chain
/// (oldest first).
#[derive(Debug, Default, Clone)]
struct TtlBucket {
    active: Option<usize>,
    chain: Vec<usize>,
}

/// The TTL-bucketed append-only segment store (Pelikan Segcache's
/// design): no LRU, no per-item free lists — items append, whole
/// segments expire, and merge passes compact the oldest sealed
/// segments of a bucket under memory pressure.
pub struct SegmentEngine {
    meta: MetaPool,
    meta_space: DataSpace,
    data_space: DataSpace,
    cfg: SegmentConfig,
    mem_limit: u64,
    buckets: u64,
    heads: u64,
    segments: Vec<Segment>,
    free_segs: Vec<usize>,
    ttl: Vec<TtlBucket>,
    items: u64,
    evictions: u64,
    expired: u64,
    /// Indexed nodes that are spill *parts* (excluded from `len`).
    spill_parts: u64,
    /// Background mode: fences publish only; expiry sweeps and merges
    /// run in the tick.
    background: bool,
}

impl SegmentEngine {
    fn new(
        meta_space: DataSpace,
        data_space: DataSpace,
        mem_limit: u64,
        buckets: u64,
        cfg: SegmentConfig,
    ) -> Self {
        assert!(
            cfg.ttl_bounds.windows(2).all(|w| w[0] < w[1]),
            "ttl_bounds must ascend"
        );
        assert!(
            mem_limit as usize >= (cfg.ttl_bounds.len() + 2) * cfg.segment_bytes,
            "mem_limit too small for one segment per TTL bucket"
        );
        let buckets = buckets.next_power_of_two();
        let heads = meta_space.alloc((buckets * 8) as usize);
        let n_ttl = cfg.ttl_bounds.len() + 1;
        Self {
            meta: MetaPool::new(meta_space.clone()),
            meta_space,
            data_space,
            cfg,
            mem_limit,
            buckets,
            heads,
            segments: Vec::new(),
            free_segs: Vec::new(),
            ttl: vec![TtlBucket::default(); n_ttl],
            items: 0,
            evictions: 0,
            expired: 0,
            spill_parts: 0,
            background: false,
        }
    }

    fn bucket_addr(&self, key: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.heads + (hash64(h) & (self.buckets - 1)) * 8
    }

    fn key_matches(&self, ctx: &mut ThreadCtx, item: u64, key: &[u8]) -> bool {
        let klen = self.data_space.read_u32(ctx, item) as usize;
        if klen != key.len() {
            return false;
        }
        let mut stored = vec![0u8; klen];
        self.data_space.read(ctx, item + 8, &mut stored);
        stored == key
    }

    fn find(&self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<(u64, u64)> {
        let bucket = self.bucket_addr(key);
        let mut prev = NIL;
        let mut node = self.meta_space.read_u64(ctx, bucket);
        while node != NIL {
            let item = self.meta_space.read_u64(ctx, node + S_ITEM);
            if self.key_matches(ctx, item, key) {
                return Some((node, prev));
            }
            prev = node;
            node = self.meta_space.read_u64(ctx, node + S_NEXT);
        }
        None
    }

    fn chain_unlink(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64, prev: u64) {
        let next = self.meta_space.read_u64(ctx, node + S_NEXT);
        if prev == NIL {
            self.meta_space.write_u64(ctx, self.bucket_addr(key), next);
        } else {
            self.meta_space.write_u64(ctx, prev + S_NEXT, next);
        }
    }

    /// The TTL bucket an item with `expiry` belongs to *now*.
    fn ttl_bucket_of(&self, ctx: &ThreadCtx, expiry: u32) -> usize {
        if expiry == 0 {
            return self.cfg.ttl_bounds.len();
        }
        let remaining = expiry.saturating_sub(now_secs(ctx));
        self.cfg
            .ttl_bounds
            .iter()
            .position(|&b| remaining <= b)
            .unwrap_or(self.cfg.ttl_bounds.len())
    }

    /// Acquires a fresh (empty, unsealed) segment, reclaiming under
    /// memory pressure.
    fn alloc_segment(&mut self, ctx: &mut ThreadCtx) -> usize {
        loop {
            if let Some(id) = self.free_segs.pop() {
                let base = self.segments[id].base;
                self.segments[id] = Segment::fresh(base);
                return id;
            }
            let next_bytes = ((self.segments.len() + 1) * self.cfg.segment_bytes) as u64;
            if next_bytes <= self.mem_limit {
                let base = self.data_space.alloc(self.cfg.segment_bytes);
                self.segments.push(Segment::fresh(base));
                return self.segments.len() - 1;
            }
            // Inline reclamation stalls the set that triggered it; in
            // background mode the tick's free-segment reserve makes
            // this path rare.
            let t0 = ctx.now();
            self.reclaim(ctx);
            Stats::add(&ctx.machine.stats.maint_stall_cycles, ctx.now() - t0);
        }
    }

    /// Appends `(key, value)` into TTL bucket `tb`, returning
    /// `(segment_id, item_addr)`.
    fn append(
        &mut self,
        ctx: &mut ThreadCtx,
        tb: usize,
        key: &[u8],
        value: &[u8],
        expiry: u32,
    ) -> (usize, u64) {
        let record_len = 8 + key.len() + value.len();
        assert!(
            record_len <= self.cfg.segment_bytes,
            "record larger than a segment"
        );
        let need_new = match self.ttl[tb].active {
            Some(id) => self.segments[id].write + record_len > self.cfg.segment_bytes,
            None => true,
        };
        if need_new {
            if let Some(old) = self.ttl[tb].active.take() {
                self.segments[old].sealed = true;
                self.ttl[tb].chain.push(old);
            }
            let id = self.alloc_segment(ctx);
            self.ttl[tb].active = Some(id);
        }
        let id = self.ttl[tb].active.expect("active segment");
        let seg = &mut self.segments[id];
        let item = seg.base + seg.write as u64;
        seg.write += record_len;
        seg.appended += 1;
        seg.live += 1;
        if expiry == 0 {
            seg.all_ttl = false;
        } else {
            seg.max_expiry = seg.max_expiry.max(expiry);
        }
        let mut rec = Vec::with_capacity(record_len);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        self.data_space.write(ctx, item, &rec);
        (id, item)
    }

    /// Drops the index's reference into `seg` (the record bytes stay
    /// until the segment is expired or merged away).
    fn dead_mark(&mut self, seg: usize) {
        self.segments[seg].live -= 1;
    }

    /// Unlinks `node` from `key`'s chain by walking node addresses
    /// (no key-byte reads — safe while a merge is rewriting segment
    /// regions other index entries still point into).
    fn unlink_node(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64) {
        let bucket = self.bucket_addr(key);
        let mut prev = NIL;
        let mut cur = self.meta_space.read_u64(ctx, bucket);
        while cur != NIL && cur != node {
            prev = cur;
            cur = self.meta_space.read_u64(ctx, cur + S_NEXT);
        }
        assert_eq!(cur, node, "node must be chained");
        let next = self.meta_space.read_u64(ctx, node + S_NEXT);
        if prev == NIL {
            self.meta_space.write_u64(ctx, bucket, next);
        } else {
            self.meta_space.write_u64(ctx, prev + S_NEXT, next);
        }
    }

    /// Unlinks and frees the index node of an expired item.
    fn drop_expired(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64, prev: u64, seg: usize) {
        if self.meta_space.read_u32(ctx, node + S_FLAGS) == FLAG_PART {
            self.spill_parts -= 1;
        }
        self.chain_unlink(ctx, key, node, prev);
        self.meta.free(node);
        self.dead_mark(seg);
        self.items -= 1;
        self.expired += 1;
        Stats::bump(&ctx.machine.stats.expired_items);
    }

    /// Reclaims whole segments whose every item has expired. An active
    /// segment past its deadline is sealed first so it qualifies too.
    /// Returns the number of segments recycled.
    fn expire_segments(&mut self, ctx: &mut ThreadCtx) -> usize {
        let now = now_secs(ctx);
        let mut reclaimed = 0usize;
        for tb in 0..self.ttl.len() {
            if let Some(id) = self.ttl[tb].active {
                let s = &self.segments[id];
                if s.appended > 0 && s.all_ttl && s.max_expiry <= now {
                    self.ttl[tb].active = None;
                    self.segments[id].sealed = true;
                    self.ttl[tb].chain.push(id);
                }
            }
        }
        for tb in 0..self.ttl.len() {
            let victims: Vec<usize> = self.ttl[tb]
                .chain
                .iter()
                .copied()
                .filter(|&id| self.segments[id].all_ttl && self.segments[id].max_expiry <= now)
                .collect();
            for id in victims {
                self.retire_segment(ctx, id, true);
                self.ttl[tb].chain.retain(|&s| s != id);
                self.free_segs.push(id);
                reclaimed += 1;
                Stats::bump(&ctx.machine.stats.seg_expired_segments);
            }
        }
        reclaimed
    }

    /// Walks `seg`'s records and unlinks every index entry still
    /// pointing into it. `expiring` classifies the drops as expiry
    /// (whole-segment deadline) rather than eviction.
    fn retire_segment(&mut self, ctx: &mut ThreadCtx, seg: usize, expiring: bool) {
        let base = self.segments[seg].base;
        let end = self.segments[seg].write;
        let mut off = 0usize;
        while off < end {
            let item = base + off as u64;
            let klen = self.data_space.read_u32(ctx, item) as usize;
            let vlen = self.data_space.read_u32(ctx, item + 4) as usize;
            let mut key = vec![0u8; klen];
            self.data_space.read(ctx, item + 8, &mut key);
            if let Some((node, prev)) = self.find(ctx, &key) {
                // Only drop the index entry if it still points at
                // *this* copy (a newer set may live elsewhere).
                if self.meta_space.read_u64(ctx, node + S_ITEM) == item {
                    if self.meta_space.read_u32(ctx, node + S_FLAGS) == FLAG_PART {
                        self.spill_parts -= 1;
                    }
                    self.chain_unlink(ctx, &key, node, prev);
                    self.meta.free(node);
                    self.items -= 1;
                    if expiring {
                        self.expired += 1;
                        Stats::bump(&ctx.machine.stats.expired_items);
                    } else {
                        self.evictions += 1;
                    }
                }
            }
            off += 8 + klen + vlen;
        }
        self.segments[seg].live = 0;
    }

    /// Merge-based eviction: compact the longest sealed chain's oldest
    /// segments, keep the most-requested survivors in one segment
    /// fewer, evict the overflow.
    fn merge(&mut self, ctx: &mut ThreadCtx) {
        // Choose the TTL bucket with the most sealed segments; seal
        // active segments first if nothing is sealed anywhere.
        let pick = |this: &Self| -> Option<usize> {
            (0..this.ttl.len())
                .filter(|&tb| !this.ttl[tb].chain.is_empty())
                .max_by_key(|&tb| this.ttl[tb].chain.len())
        };
        let tb = match pick(self) {
            Some(tb) => tb,
            None => {
                for tb in 0..self.ttl.len() {
                    if let Some(id) = self.ttl[tb].active.take() {
                        self.segments[id].sealed = true;
                        self.ttl[tb].chain.push(id);
                    }
                }
                pick(self).expect("segment pool exhausted with no sealed segments")
            }
        };
        let take = self.cfg.merge_segments.min(self.ttl[tb].chain.len()).max(1);
        let victims: Vec<usize> = self.ttl[tb].chain.drain(..take).collect();
        let now = now_secs(ctx);

        // Collect the live, unexpired survivors with their index state.
        struct Survivor {
            key: Vec<u8>,
            value: Vec<u8>,
            node: u64,
            expiry: u32,
            freq: u32,
            flags: u32,
        }
        let mut survivors: Vec<Survivor> = Vec::new();
        for &seg in &victims {
            let base = self.segments[seg].base;
            let end = self.segments[seg].write;
            let mut off = 0usize;
            while off < end {
                let item = base + off as u64;
                let klen = self.data_space.read_u32(ctx, item) as usize;
                let vlen = self.data_space.read_u32(ctx, item + 4) as usize;
                let mut key = vec![0u8; klen];
                self.data_space.read(ctx, item + 8, &mut key);
                if let Some((node, prev)) = self.find(ctx, &key) {
                    if self.meta_space.read_u64(ctx, node + S_ITEM) == item {
                        let expiry = self.meta_space.read_u32(ctx, node + S_EXPIRY);
                        if expiry != 0 && now >= expiry {
                            self.drop_expired(ctx, &key, node, prev, seg);
                        } else {
                            let freq = self.meta_space.read_u32(ctx, node + S_FREQ);
                            let flags = self.meta_space.read_u32(ctx, node + S_FLAGS);
                            let mut value = vec![0u8; vlen];
                            self.data_space
                                .read(ctx, item + 8 + klen as u64, &mut value);
                            survivors.push(Survivor {
                                key,
                                value,
                                node,
                                expiry,
                                freq,
                                flags,
                            });
                        }
                    }
                }
                off += 8 + klen + vlen;
            }
            self.segments[seg].live = 0;
        }

        // Repack the most-requested survivors directly into at most
        // `take - 1` of the reclaimed segments (NOT through the append
        // path — appending could recurse into another merge and
        // invalidate the survivor list). Whatever doesn't fit is
        // evicted, so the merge always nets at least one free segment.
        survivors.sort_by_key(|s| std::cmp::Reverse(s.freq));
        let mut spare = victims;
        let max_targets = take.saturating_sub(1);
        let mut repacked: Vec<usize> = Vec::new();
        let mut cur: Option<usize> = None;
        for s in survivors {
            let len = 8 + s.key.len() + s.value.len();
            let mut fits =
                cur.is_some_and(|id| self.segments[id].write + len <= self.cfg.segment_bytes);
            if !fits && repacked.len() < max_targets {
                let id = spare.pop().expect("victim segment spare");
                self.segments[id] = Segment::fresh(self.segments[id].base);
                self.segments[id].sealed = true;
                repacked.push(id);
                cur = Some(id);
                fits = true;
            }
            if !fits {
                // Evicted by the merge: unlink its index entry. By
                // node address, not key lookup — pending survivors
                // still point into victim regions the repack is
                // overwriting, so key comparison would read clobbered
                // bytes.
                if s.flags == FLAG_PART {
                    self.spill_parts -= 1;
                }
                self.unlink_node(ctx, &s.key, s.node);
                self.meta.free(s.node);
                self.items -= 1;
                self.evictions += 1;
                continue;
            }
            let id = cur.expect("open repack target");
            let seg = &mut self.segments[id];
            let item = seg.base + seg.write as u64;
            seg.write += len;
            seg.appended += 1;
            seg.live += 1;
            if s.expiry == 0 {
                seg.all_ttl = false;
            } else {
                seg.max_expiry = seg.max_expiry.max(s.expiry);
            }
            let mut rec = Vec::with_capacity(len);
            rec.extend_from_slice(&(s.key.len() as u32).to_le_bytes());
            rec.extend_from_slice(&(s.value.len() as u32).to_le_bytes());
            rec.extend_from_slice(&s.key);
            rec.extend_from_slice(&s.value);
            self.data_space.write(ctx, item, &rec);
            self.meta_space.write_u64(ctx, s.node + S_ITEM, item);
            self.meta_space.write_u32(ctx, s.node + S_SEG, id as u32);
        }
        // Repacked segments rejoin the head of the chain (they hold
        // the bucket's oldest surviving items); untouched victims are
        // free for reuse.
        for (i, id) in repacked.iter().enumerate() {
            self.ttl[tb].chain.insert(i, *id);
        }
        self.free_segs.extend(spare);
        ctx.compute(ctx.machine.cfg.costs.seg_merge);
        Stats::bump(&ctx.machine.stats.seg_merges);
    }

    /// Relieves memory pressure: whole-segment expiry first (free),
    /// merge-based eviction otherwise.
    fn reclaim(&mut self, ctx: &mut ThreadCtx) {
        if self.expire_segments(ctx) > 0 {
            return;
        }
        self.merge(ctx);
    }

    // --- Spill chaining (values larger than one segment) ----------

    /// The plain single-record insert/overwrite path (the pre-spill
    /// `set`), parameterized by the record's role flag.
    fn insert_or_update(
        &mut self,
        ctx: &mut ThreadCtx,
        key: &[u8],
        value: &[u8],
        expiry: u32,
        version: u64,
        flags: u32,
    ) {
        let tb = self.ttl_bucket_of(ctx, expiry);
        let (seg, item) = self.append(ctx, tb, key, value, expiry);
        // Look the key up *after* appending: the append may have run a
        // merge that relocated (or evicted) the previous copy, so any
        // earlier index probe would be stale.
        match self.find(ctx, key) {
            Some((node, _)) => {
                let old_seg = self.meta_space.read_u32(ctx, node + S_SEG) as usize;
                self.dead_mark(old_seg);
                self.meta_space.write_u64(ctx, node + S_ITEM, item);
                self.meta_space.write_u32(ctx, node + S_SEG, seg as u32);
                self.meta_space.write_u32(ctx, node + S_EXPIRY, expiry);
                self.meta_space.write_u32(ctx, node + S_FLAGS, flags);
                self.meta_space.write_u64(ctx, node + S_VERSION, version);
            }
            None => {
                let node = self.meta.alloc();
                let bucket = self.bucket_addr(key);
                let head = self.meta_space.read_u64(ctx, bucket);
                self.meta_space.write_u64(ctx, node + S_NEXT, head);
                self.meta_space.write_u64(ctx, node + S_ITEM, item);
                self.meta_space.write_u32(ctx, node + S_SEG, seg as u32);
                self.meta_space.write_u32(ctx, node + S_FREQ, 0);
                self.meta_space.write_u32(ctx, node + S_EXPIRY, expiry);
                self.meta_space.write_u32(ctx, node + S_FLAGS, flags);
                self.meta_space.write_u64(ctx, node + S_VERSION, version);
                self.meta_space.write_u64(ctx, bucket, node);
                self.items += 1;
                if flags == FLAG_PART {
                    self.spill_parts += 1;
                }
            }
        }
    }

    /// Stores a value too large for one segment: the value is split
    /// into parts under reserved derived keys, each appended like any
    /// record, and the client-visible key maps to a 16-byte descriptor
    /// (`total_len u64 ‖ nparts u32 ‖ magic u32`).
    fn set_spill(
        &mut self,
        ctx: &mut ThreadCtx,
        key: &[u8],
        value: &[u8],
        expiry: u32,
        version: u64,
    ) {
        self.drop_spill_parts_of(ctx, key);
        let part_cap = self
            .cfg
            .segment_bytes
            .checked_sub(8 + key.len() + 5)
            .filter(|&c| c > 0)
            .expect("key too large to spill across segments");
        for (i, chunk) in value.chunks(part_cap).enumerate() {
            let pk = spill_part_key(key, i as u32);
            self.insert_or_update(ctx, &pk, chunk, expiry, version, FLAG_PART);
        }
        let nparts = value.len().div_ceil(part_cap) as u32;
        let mut desc = Vec::with_capacity(16);
        desc.extend_from_slice(&(value.len() as u64).to_le_bytes());
        desc.extend_from_slice(&nparts.to_le_bytes());
        desc.extend_from_slice(&SPILL_MAGIC.to_le_bytes());
        self.insert_or_update(ctx, key, &desc, expiry, version, FLAG_HEAD);
    }

    /// Reads a spill head's descriptor `(total_len, nparts)`.
    fn read_spill_desc(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64) -> (u64, u32) {
        let item = self.meta_space.read_u64(ctx, node + S_ITEM);
        let mut desc = vec![0u8; 16];
        self.data_space
            .read(ctx, item + 8 + key.len() as u64, &mut desc);
        let total = u64::from_le_bytes(desc[..8].try_into().expect("desc"));
        let nparts = u32::from_le_bytes(desc[8..12].try_into().expect("desc"));
        let magic = u32::from_le_bytes(desc[12..16].try_into().expect("desc"));
        assert_eq!(magic, SPILL_MAGIC, "corrupt spill descriptor");
        (total, nparts)
    }

    /// If `key` currently maps to a spill head, deletes its parts (the
    /// head itself is left for the caller to overwrite or remove).
    fn drop_spill_parts_of(&mut self, ctx: &mut ThreadCtx, key: &[u8]) {
        let Some((node, _)) = self.find(ctx, key) else {
            return;
        };
        if self.meta_space.read_u32(ctx, node + S_FLAGS) != FLAG_HEAD {
            return;
        }
        let (_, nparts) = self.read_spill_desc(ctx, key, node);
        for i in 0..nparts {
            self.delete(ctx, &spill_part_key(key, i));
        }
    }

    /// Reassembles a spill from its parts. A missing part (evicted by
    /// a merge under pressure) makes the whole spill unreadable: the
    /// remnants are deleted and the read misses.
    fn read_spill(&mut self, ctx: &mut ThreadCtx, key: &[u8], node: u64) -> Option<Vec<u8>> {
        let (total, nparts) = self.read_spill_desc(ctx, key, node);
        let mut out = Vec::with_capacity(total as usize);
        for i in 0..nparts {
            match self.get(ctx, &spill_part_key(key, i)) {
                Some(chunk) => out.extend_from_slice(&chunk),
                None => {
                    self.delete(ctx, key);
                    return None;
                }
            }
        }
        debug_assert_eq!(out.len() as u64, total, "spill reassembly length");
        Some(out)
    }

    /// Read-only spill reassembly from the head's descriptor bytes
    /// (for `for_each`, which cannot take `&mut self`). Returns
    /// `None` when a part is missing (broken spill).
    fn reassemble_spill(&self, ctx: &mut ThreadCtx, key: &[u8], desc: &[u8]) -> Option<Vec<u8>> {
        let total = u64::from_le_bytes(desc[..8].try_into().expect("desc"));
        let nparts = u32::from_le_bytes(desc[8..12].try_into().expect("desc"));
        let magic = u32::from_le_bytes(desc[12..16].try_into().expect("desc"));
        assert_eq!(magic, SPILL_MAGIC, "corrupt spill descriptor");
        let mut out = Vec::with_capacity(total as usize);
        for i in 0..nparts {
            let pk = spill_part_key(key, i);
            let (node, _) = self.find(ctx, &pk)?;
            let item = self.meta_space.read_u64(ctx, node + S_ITEM);
            let vlen = self.data_space.read_u32(ctx, item + 4) as usize;
            let mut chunk = vec![0u8; vlen];
            self.data_space
                .read(ctx, item + 8 + pk.len() as u64, &mut chunk);
            out.extend_from_slice(&chunk);
        }
        Some(out)
    }
}

impl StorageEngine for SegmentEngine {
    fn label(&self) -> &'static str {
        "segment"
    }

    fn init(&self, ctx: &mut ThreadCtx) {
        let zeros = vec![0u8; 4096];
        let len = self.buckets * 8;
        let mut off = 0u64;
        while off < len {
            let n = ((len - off) as usize).min(4096);
            self.meta_space.write(ctx, self.heads + off, &zeros[..n]);
            off += n as u64;
        }
    }

    fn set(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8], expiry: u32, version: u64) {
        let record_len = 8 + key.len() + value.len();
        if record_len > self.cfg.segment_bytes {
            self.set_spill(ctx, key, value, expiry, version);
            return;
        }
        // A plain set over a spill head must take the old parts along.
        self.drop_spill_parts_of(ctx, key);
        self.insert_or_update(ctx, key, value, expiry, version, FLAG_PLAIN);
    }

    fn get(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        let (node, prev) = self.find(ctx, key)?;
        let expiry = self.meta_space.read_u32(ctx, node + S_EXPIRY);
        if expiry != 0 && now_secs(ctx) >= expiry {
            let seg = self.meta_space.read_u32(ctx, node + S_SEG) as usize;
            self.drop_expired(ctx, key, node, prev, seg);
            return None;
        }
        let flags = self.meta_space.read_u32(ctx, node + S_FLAGS);
        let freq = self.meta_space.read_u32(ctx, node + S_FREQ);
        self.meta_space
            .write_u32(ctx, node + S_FREQ, freq.saturating_add(1));
        if flags == FLAG_HEAD {
            return self.read_spill(ctx, key, node);
        }
        let item = self.meta_space.read_u64(ctx, node + S_ITEM);
        let vlen = self.data_space.read_u32(ctx, item + 4) as usize;
        let mut value = vec![0u8; vlen];
        self.data_space
            .read(ctx, item + 8 + key.len() as u64, &mut value);
        Some(value)
    }

    fn delete(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> bool {
        let Some((node, _)) = self.find(ctx, key) else {
            return false;
        };
        let flags = self.meta_space.read_u32(ctx, node + S_FLAGS);
        if flags == FLAG_HEAD {
            // Parts first; they live in other hash chains, but if one
            // shares the head's bucket the head's `prev` would go
            // stale, so re-find the head afterwards.
            let (_, nparts) = self.read_spill_desc(ctx, key, node);
            for i in 0..nparts {
                self.delete(ctx, &spill_part_key(key, i));
            }
        } else if flags == FLAG_PART {
            self.spill_parts -= 1;
        }
        let (node, prev) = self.find(ctx, key).expect("key still indexed");
        let seg = self.meta_space.read_u32(ctx, node + S_SEG) as usize;
        self.chain_unlink(ctx, key, node, prev);
        self.meta.free(node);
        self.dead_mark(seg);
        self.items -= 1;
        true
    }

    fn version_of(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<u64> {
        let (node, _) = self.find(ctx, key)?;
        Some(self.meta_space.read_u64(ctx, node + S_VERSION))
    }

    fn len(&self) -> u64 {
        self.items - self.spill_parts
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn expired(&self) -> u64 {
        self.expired
    }

    fn pool_bytes(&self) -> u64 {
        (self.segments.len() * self.cfg.segment_bytes) as u64
    }

    fn fence(&mut self, ctx: &mut ThreadCtx) {
        if !self.background {
            // Proactive whole-segment expiry: the host-side deadline
            // check costs nothing, but actual reclamation does
            // simulated work right here on the serving core. In
            // background mode the sweep moves to the tick.
            let t0 = ctx.now();
            self.expire_segments(ctx);
            Stats::add(&ctx.machine.stats.maint_stall_cycles, ctx.now() - t0);
        }
        // Publish per-TTL-bucket live-segment counts as class gauges.
        let st = &ctx.machine.stats.storage;
        for (tb, b) in self.ttl.iter().enumerate().take(MAX_STORAGE_CLASSES) {
            let segs = b.chain.len() as u64 + u64::from(b.active.is_some());
            Stats::set(&st.sets[tb], segs);
        }
    }

    fn set_background(&mut self, on: bool) {
        self.background = on;
    }

    fn maintenance_tick(&mut self, ctx: &mut ThreadCtx) -> bool {
        if !self.background {
            return false;
        }
        let mut did = self.expire_segments(ctx) > 0;
        // Merge proactively to keep a reserve of free segments, so the
        // serving-path allocator almost never reclaims inline. Only
        // buckets with at least two sealed segments are compacted —
        // merging a lone segment would evict everything in it.
        loop {
            let grown =
                ((self.segments.len() + 1) * self.cfg.segment_bytes) as u64 > self.mem_limit;
            let mergeable = self.ttl.iter().any(|b| b.chain.len() >= 2);
            if !grown || self.free_segs.len() >= SEG_FREE_RESERVE || !mergeable {
                break;
            }
            let before = self.free_segs.len();
            self.merge(ctx);
            Stats::bump(&ctx.machine.stats.bg_merges);
            did = true;
            if self.free_segs.len() <= before {
                break;
            }
        }
        did
    }

    fn for_each(&self, ctx: &mut ThreadCtx, f: &mut ItemVisitor) {
        let now = now_secs(ctx);
        for b in 0..self.buckets {
            let mut node = self.meta_space.read_u64(ctx, self.heads + b * 8);
            while node != NIL {
                let item = self.meta_space.read_u64(ctx, node + S_ITEM);
                let version = self.meta_space.read_u64(ctx, node + S_VERSION);
                let expiry = self.meta_space.read_u32(ctx, node + S_EXPIRY);
                let flags = self.meta_space.read_u32(ctx, node + S_FLAGS);
                // Spill parts are an encoding detail: heads are
                // visited with their reassembled value, so snapshots
                // stay engine-neutral.
                if flags != FLAG_PART && (expiry == 0 || now < expiry) {
                    let klen = self.data_space.read_u32(ctx, item) as usize;
                    let vlen = self.data_space.read_u32(ctx, item + 4) as usize;
                    let mut key = vec![0u8; klen];
                    self.data_space.read(ctx, item + 8, &mut key);
                    let mut value = vec![0u8; vlen];
                    self.data_space
                        .read(ctx, item + 8 + klen as u64, &mut value);
                    if flags == FLAG_HEAD {
                        // A broken spill chain is skipped entirely.
                        if let Some(full) = self.reassemble_spill(ctx, &key, &value) {
                            f(&key, &full, version, expiry);
                        }
                    } else {
                        f(&key, &value, version, expiry);
                    }
                }
                node = self.meta_space.read_u64(ctx, node + S_NEXT);
            }
        }
    }

    fn meta_blob(&self) -> Vec<u8> {
        let mut blob = Vec::new();
        blob.extend_from_slice(&(self.cfg.segment_bytes as u64).to_le_bytes());
        blob.extend_from_slice(&(self.cfg.ttl_bounds.len() as u32).to_le_bytes());
        for &b in &self.cfg.ttl_bounds {
            blob.extend_from_slice(&b.to_le_bytes());
        }
        blob.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn rig() -> (Arc<SgxMachine>, ThreadCtx, DataSpace) {
        let m = SgxMachine::new(MachineConfig::scaled(8));
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let space = DataSpace::Untrusted(Arc::clone(&m));
        (m, t, space)
    }

    fn slab_engine(limit: u64, rebalance: Option<RebalanceConfig>) -> (SlabEngine, ThreadCtx) {
        let (_m, mut t, space) = rig();
        let eng = SlabEngine::new(space.clone(), space, limit, 1024, rebalance);
        eng.init(&mut t);
        (eng, t)
    }

    fn segment_engine(limit: u64) -> (SegmentEngine, ThreadCtx) {
        let (_m, mut t, space) = rig();
        let eng = SegmentEngine::new(space.clone(), space, limit, 1024, SegmentConfig::default());
        eng.init(&mut t);
        (eng, t)
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineConfig::default().label(), "slab");
        assert_eq!(
            EngineConfig::Slab {
                rebalance: Some(RebalanceConfig::default())
            }
            .label(),
            "slab-rebal"
        );
        assert_eq!(
            EngineConfig::Segment(SegmentConfig::default()).label(),
            "segment"
        );
    }

    #[test]
    fn segment_set_get_delete() {
        let (mut eng, mut t) = segment_engine(8 << 20);
        eng.set(&mut t, b"hello", b"world", 0, 1);
        assert_eq!(eng.get(&mut t, b"hello").unwrap(), b"world");
        assert_eq!(eng.get(&mut t, b"missing"), None);
        eng.set(&mut t, b"hello", b"again", 0, 2);
        assert_eq!(eng.get(&mut t, b"hello").unwrap(), b"again");
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.version_of(&mut t, b"hello"), Some(2));
        assert!(eng.delete(&mut t, b"hello"));
        assert!(!eng.delete(&mut t, b"hello"));
        assert_eq!(eng.len(), 0);
        t.exit();
    }

    #[test]
    fn segment_survives_many_keys_and_merges() {
        let (mut eng, mut t) = segment_engine(1 << 20); // tight: merges must run
        let m = Arc::clone(&t.machine);
        m.reset_counters();
        for i in 0..6000u32 {
            let key = format!("key-{i:05}");
            let value = vec![(i % 251) as u8; 200 + (i as usize % 200)];
            eng.set(&mut t, key.as_bytes(), &value, 0, 1);
        }
        assert!(eng.evictions() > 0, "tight pool must evict");
        let d = m.stats.snapshot();
        assert!(d.seg_merges > 0, "eviction must be merge-based");
        // Recent keys survive with correct bytes.
        let mut present = 0;
        for i in 5900..6000u32 {
            let key = format!("key-{i:05}");
            if let Some(v) = eng.get(&mut t, key.as_bytes()) {
                assert_eq!(v, vec![(i % 251) as u8; 200 + (i as usize % 200)]);
                present += 1;
            }
        }
        assert!(present > 50, "most recent keys should survive a merge");
        assert!(eng.pool_bytes() <= 1 << 20, "memory limit respected");
        t.exit();
    }

    #[test]
    fn segment_merge_keeps_hot_items() {
        let (mut eng, mut t) = segment_engine(1 << 20);
        // Insert a hot key, touch it a lot, then overflow the pool.
        eng.set(&mut t, b"hot", &[1u8; 200], 0, 1);
        for _ in 0..50 {
            assert!(eng.get(&mut t, b"hot").is_some());
        }
        for i in 0..5000u32 {
            eng.set(&mut t, format!("cold-{i}").as_bytes(), &[0u8; 300], 0, 1);
        }
        assert!(eng.evictions() > 0);
        assert!(
            eng.get(&mut t, b"hot").is_some(),
            "frequency-ranked merge must keep the hot item"
        );
        t.exit();
    }

    #[test]
    fn segment_whole_segment_expiry() {
        let (mut eng, mut t) = segment_engine(8 << 20);
        let m = Arc::clone(&t.machine);
        m.reset_counters();
        // Everything in one short-TTL bucket.
        for i in 0..200u32 {
            eng.set(&mut t, format!("eph-{i}").as_bytes(), &[9u8; 800], 5, 1);
        }
        let pool_before = eng.pool_bytes();
        assert!(pool_before >= 128 << 10);
        // Cross the deadline; the fence reclaims sealed segments whole.
        t.compute(8 * 3_400_000_000);
        eng.fence(&mut t);
        let d = m.stats.snapshot();
        assert!(d.seg_expired_segments > 0, "whole segments must expire");
        assert!(d.expired_items > 0);
        // All lapsed: gets all miss (the active segment expires lazily).
        for i in (0..200u32).step_by(13) {
            assert_eq!(eng.get(&mut t, format!("eph-{i}").as_bytes()), None);
        }
        assert_eq!(eng.len(), 0);
        t.exit();
    }

    #[test]
    fn rebalancer_moves_slabs_to_starved_class() {
        // 4 MiB pool, phase A fills small items, phase B needs big
        // chunks: without moves the small class calcifies the pool.
        let (mut eng, mut t) = slab_engine(4 << 20, Some(RebalanceConfig::default()));
        let m = Arc::clone(&t.machine);
        m.reset_counters();
        for i in 0..20_000u32 {
            eng.set(&mut t, format!("a-{i}").as_bytes(), &[1u8; 100], 0, 1);
        }
        // Phase B: large values; deletes drain phase A.
        for i in 0..20_000u32 {
            eng.delete(&mut t, format!("a-{i}").as_bytes());
        }
        for i in 0..2_000u32 {
            eng.set(&mut t, format!("b-{i}").as_bytes(), &[2u8; 1200], 0, 1);
            if i % 64 == 0 {
                eng.fence(&mut t);
            }
        }
        eng.fence(&mut t);
        let d = m.stats.snapshot();
        assert!(d.slab_moves > 0, "the rebalancer must move slabs");
        // Everything in phase B's recent window still reads correctly.
        for i in 1_500..2_000u32 {
            if let Some(v) = eng.get(&mut t, format!("b-{i}").as_bytes()) {
                assert_eq!(v, vec![2u8; 1200]);
            }
        }
        t.exit();
    }

    #[test]
    fn segment_spills_values_larger_than_a_segment() {
        let (mut eng, mut t) = segment_engine(8 << 20);
        // 300 KiB value vs 128 KiB segments: must chain across spills.
        let big: Vec<u8> = (0..300 << 10).map(|i: u32| (i % 241) as u8).collect();
        eng.set(&mut t, b"big", &big, 0, 1);
        assert_eq!(eng.len(), 1, "spill parts are an encoding detail");
        assert_eq!(eng.get(&mut t, b"big").unwrap(), big);
        assert_eq!(eng.version_of(&mut t, b"big"), Some(1));
        // Overwrite with a different large value, then shrink to small.
        let big2: Vec<u8> = (0..200 << 10).map(|i: u32| (i % 13) as u8).collect();
        eng.set(&mut t, b"big", &big2, 0, 2);
        assert_eq!(eng.get(&mut t, b"big").unwrap(), big2);
        assert_eq!(eng.len(), 1);
        eng.set(&mut t, b"big", b"small", 0, 3);
        assert_eq!(eng.get(&mut t, b"big").unwrap(), b"small");
        assert_eq!(eng.len(), 1);
        // Spills re-grow and delete cleanly, parts included.
        eng.set(&mut t, b"big", &big, 0, 4);
        assert!(eng.delete(&mut t, b"big"));
        assert!(eng.get(&mut t, b"big").is_none());
        assert_eq!(eng.len(), 0);
        t.exit();
    }

    #[test]
    fn segment_spill_round_trips_through_for_each() {
        let (mut eng, mut t) = segment_engine(8 << 20);
        let big: Vec<u8> = (0..160 << 10).map(|i: u32| (i % 239) as u8).collect();
        eng.set(&mut t, b"wide", &big, 0, 5);
        eng.set(&mut t, b"narrow", b"v", 0, 6);
        let mut seen: Vec<(Vec<u8>, Vec<u8>, u64)> = Vec::new();
        eng.for_each(&mut t, &mut |k: &[u8], v: &[u8], ver, _| {
            seen.push((k.to_vec(), v.to_vec(), ver));
        });
        seen.sort();
        assert_eq!(seen.len(), 2, "spill parts must not be visited");
        assert_eq!(seen[0], (b"narrow".to_vec(), b"v".to_vec(), 6));
        assert_eq!(seen[1].0, b"wide".to_vec());
        assert_eq!(seen[1].1, big, "heads are visited reassembled");
        assert_eq!(seen[1].2, 5);
        t.exit();
    }

    #[test]
    fn background_slab_moves_happen_in_the_tick_not_the_fence() {
        let (mut eng, mut t) = slab_engine(4 << 20, Some(RebalanceConfig::default()));
        let m = Arc::clone(&t.machine);
        eng.set_background(true);
        m.reset_counters();
        // Calcify on small items, then shift to large ones (the same
        // load the synchronous rebalancer test uses).
        for i in 0..20_000u32 {
            eng.set(&mut t, format!("a-{i}").as_bytes(), &[1u8; 100], 0, 1);
        }
        for i in 0..20_000u32 {
            eng.delete(&mut t, format!("a-{i}").as_bytes());
        }
        for i in 0..2_000u32 {
            eng.set(&mut t, format!("b-{i}").as_bytes(), &[2u8; 1200], 0, 1);
            if i % 64 == 0 {
                eng.fence(&mut t);
            }
        }
        let d = m.stats.snapshot();
        assert_eq!(d.slab_moves, 0, "background fences must not move slabs");
        assert_eq!(d.maint_stall_cycles, 0, "background fences must not stall");
        assert!(
            eng.maintenance_tick(&mut t),
            "the tick must find the starved class"
        );
        let d = m.stats.snapshot();
        assert!(d.slab_moves > 0, "moves run in the tick");
        assert_eq!(d.maint_stall_cycles, 0, "tick work is not a serving stall");
        t.exit();
    }

    #[test]
    fn background_segment_tick_merges_proactively() {
        let (mut eng, mut t) = segment_engine(1 << 20);
        let m = Arc::clone(&t.machine);
        eng.set_background(true);
        m.reset_counters();
        for i in 0..6000u32 {
            let key = format!("key-{i:05}");
            let value = vec![(i % 251) as u8; 200 + (i as usize % 200)];
            eng.set(&mut t, key.as_bytes(), &value, 0, 1);
            if i % 64 == 0 {
                eng.fence(&mut t);
                eng.maintenance_tick(&mut t);
            }
        }
        let d = m.stats.snapshot();
        assert!(d.bg_merges > 0, "the tick must merge proactively");
        // Recent keys survive with correct bytes despite background
        // compaction.
        let mut present = 0;
        for i in 5900..6000u32 {
            let key = format!("key-{i:05}");
            if let Some(v) = eng.get(&mut t, key.as_bytes()) {
                assert_eq!(v, vec![(i % 251) as u8; 200 + (i as usize % 200)]);
                present += 1;
            }
        }
        assert!(present > 50, "recent keys should survive background merges");
        t.exit();
    }

    #[test]
    fn rebalancer_off_fence_is_free() {
        let (mut eng, mut t) = slab_engine(4 << 20, None);
        eng.set(&mut t, b"k", b"v", 0, 1);
        let before = t.now();
        eng.fence(&mut t);
        assert_eq!(t.now(), before, "disabled rebalancer must charge nothing");
        t.exit();
    }

    #[test]
    fn relocated_items_read_back_exactly() {
        let (mut eng, mut t) = slab_engine(4 << 20, Some(RebalanceConfig::default()));
        // Live small items that will be relocated when their slabs
        // donate to the large class.
        for i in 0..500u32 {
            eng.set(&mut t, format!("keep-{i}").as_bytes(), &[7u8; 120], 0, 1);
        }
        for i in 0..2_500u32 {
            eng.set(&mut t, format!("fill-{i}").as_bytes(), &[3u8; 1200], 0, 1);
            if i % 64 == 0 {
                eng.fence(&mut t);
            }
        }
        // Any keep-* item still indexed must read back exactly.
        for i in 0..500u32 {
            if let Some(v) = eng.get(&mut t, format!("keep-{i}").as_bytes()) {
                assert_eq!(v, vec![7u8; 120]);
            }
        }
        t.exit();
    }
}
