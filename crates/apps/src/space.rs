//! The data-space abstraction the evaluation applications are written
//! against.
//!
//! Every server in the paper's evaluation is run in several memory
//! configurations: untrusted (native), enclave memory under SGX
//! hardware paging ("vanilla SGX"), and SUVM (cached or direct).
//! [`DataSpace`] lets one application implementation target all of
//! them, which is what makes the head-to-head figures meaningful.

use std::sync::Arc;

use eleos_core::Suvm;
use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

/// A memory backend for application data.
#[derive(Clone)]
pub enum DataSpace {
    /// Plain untrusted memory (the no-SGX baseline, and the clear
    /// metadata pool of the Eleos memcached port, §5.1).
    Untrusted(Arc<SgxMachine>),
    /// Enclave-linear memory under SGX hardware paging.
    Enclave(Arc<Enclave>),
    /// SUVM secure memory.
    Suvm {
        /// The SUVM instance.
        suvm: Arc<Suvm>,
        /// Use direct sub-page backing-store access (§3.2.4) instead
        /// of the EPC++ page cache.
        direct: bool,
    },
}

impl DataSpace {
    /// A SUVM-backed space using the page cache.
    #[must_use]
    pub fn suvm(suvm: &Arc<Suvm>) -> Self {
        DataSpace::Suvm {
            suvm: Arc::clone(suvm),
            direct: false,
        }
    }

    /// A SUVM-backed space using direct sub-page access.
    #[must_use]
    pub fn suvm_direct(suvm: &Arc<Suvm>) -> Self {
        DataSpace::Suvm {
            suvm: Arc::clone(suvm),
            direct: true,
        }
    }

    /// Allocates `len` bytes, returning a space-local address.
    #[must_use]
    pub fn alloc(&self, len: usize) -> u64 {
        match self {
            DataSpace::Untrusted(m) => m.alloc_untrusted(len),
            DataSpace::Enclave(e) => e.alloc(len),
            DataSpace::Suvm { suvm, .. } => suvm.malloc(len),
        }
    }

    /// Frees an allocation.
    pub fn free(&self, addr: u64) {
        match self {
            DataSpace::Untrusted(m) => m.free_untrusted(addr),
            DataSpace::Enclave(e) => e.free(addr),
            DataSpace::Suvm { suvm, .. } => suvm.free(addr),
        }
    }

    /// Reads `buf.len()` bytes at `addr`.
    pub fn read(&self, ctx: &mut ThreadCtx, addr: u64, buf: &mut [u8]) {
        match self {
            DataSpace::Untrusted(_) => ctx.read_untrusted(addr, buf),
            DataSpace::Enclave(_) => ctx.read_enclave(addr, buf),
            DataSpace::Suvm {
                suvm,
                direct: false,
            } => suvm.read(ctx, addr, buf),
            DataSpace::Suvm { suvm, direct: true } => suvm.read_direct(ctx, addr, buf),
        }
    }

    /// Writes `data` at `addr`.
    pub fn write(&self, ctx: &mut ThreadCtx, addr: u64, data: &[u8]) {
        match self {
            DataSpace::Untrusted(_) => ctx.write_untrusted(addr, data),
            DataSpace::Enclave(_) => ctx.write_enclave(addr, data),
            DataSpace::Suvm {
                suvm,
                direct: false,
            } => suvm.write(ctx, addr, data),
            DataSpace::Suvm { suvm, direct: true } => suvm.write_direct(ctx, addr, data),
        }
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, ctx: &mut ThreadCtx, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(ctx, addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&self, ctx: &mut ThreadCtx, addr: u64, v: u64) {
        self.write(ctx, addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, ctx: &mut ThreadCtx, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(ctx, addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&self, ctx: &mut ThreadCtx, addr: u64, v: u32) {
        self.write(ctx, addr, &v.to_le_bytes());
    }

    /// Human-readable backend name (used in experiment output).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DataSpace::Untrusted(_) => "untrusted",
            DataSpace::Enclave(_) => "enclave",
            DataSpace::Suvm { direct: false, .. } => "suvm",
            DataSpace::Suvm { direct: true, .. } => "suvm-direct",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_core::SuvmConfig;
    use eleos_enclave::machine::MachineConfig;

    fn harness() -> (Arc<SgxMachine>, Arc<Enclave>, Arc<Suvm>) {
        let m = SgxMachine::new(MachineConfig::scaled(4));
        let e = m.driver.create_enclave(&m, 2 << 20);
        let t = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t, SuvmConfig::tiny());
        (m, e, s)
    }

    #[test]
    fn all_spaces_roundtrip() {
        let (m, e, s) = harness();
        let spaces = [
            DataSpace::Untrusted(Arc::clone(&m)),
            DataSpace::Enclave(Arc::clone(&e)),
            DataSpace::suvm(&s),
        ];
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for space in &spaces {
            let a = space.alloc(256);
            space.write(&mut t, a, b"space data");
            let mut buf = [0u8; 10];
            space.read(&mut t, a, &mut buf);
            assert_eq!(&buf, b"space data", "{}", space.label());
            space.write_u64(&mut t, a + 100, 0xabcd);
            assert_eq!(space.read_u64(&mut t, a + 100), 0xabcd);
            space.free(a);
        }
        t.exit();
    }

    #[test]
    fn direct_space_roundtrip() {
        let m = SgxMachine::new(MachineConfig::scaled(4));
        let e = m.driver.create_enclave(&m, 2 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(
            &t0,
            SuvmConfig {
                seal_sub_pages: true,
                ..SuvmConfig::tiny()
            },
        );
        let space = DataSpace::suvm_direct(&s);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let a = space.alloc(8192);
        space.write(&mut t, a + 100, b"direct space");
        let mut buf = [0u8; 12];
        space.read(&mut t, a + 100, &mut buf);
        assert_eq!(&buf, b"direct space");
        assert_eq!(space.label(), "suvm-direct");
        t.exit();
    }
}
