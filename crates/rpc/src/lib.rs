//! Exit-less RPC for enclaves (Eleos §3.1).
//!
//! Instead of OCALLing (8k cycles of direct cost plus a TLB flush and
//! cache-state loss), the enclave writes a job descriptor into a shared
//! ring in *untrusted* memory and spins on its completion flag; a pool
//! of worker threads in the owner process polls the ring, executes the
//! untrusted function (typically a system call) and posts the result
//! back. The enclave never leaves trusted mode.
//!
//! Two refinements from the paper are implemented:
//!
//! - **Cache partitioning** (§3.1): with
//!   [`SgxMachine::enable_cat`](eleos_enclave::machine::SgxMachine)
//!   workers are fenced into 25% of the LLC ways, so their I/O buffers
//!   stop evicting enclave state;
//! - **OCALL fallback**: long-blocking calls (the paper's `poll()`)
//!   should keep using OCALLs rather than burn a worker — see
//!   [`ThreadCtx::ocall`](eleos_enclave::thread::ThreadCtx::ocall).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use eleos_enclave::machine::{MachineConfig, SgxMachine};
//! use eleos_enclave::thread::ThreadCtx;
//! use eleos_rpc::{RpcService, UntrustedFn};
//!
//! let machine = SgxMachine::new(MachineConfig::tiny());
//! let svc = RpcService::builder(&machine)
//!     .register(7, UntrustedFn::new(|_ctx, args| args[0] + args[1]))
//!     .workers(1, &[3])
//!     .build();
//!
//! let enclave = machine.driver.create_enclave(&machine, 64 * 4096);
//! let mut t = ThreadCtx::for_enclave(&machine, &enclave, 0);
//! t.enter();
//! let sum = svc.call(&mut t, 7, [20, 22, 0, 0]);
//! assert_eq!(sum, 42);
//! t.exit();
//! ```

pub mod libos;

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;

/// Slot layout (one 64-byte line, mirroring a real implementation):
/// `[state][func][arg0..arg3][ret][worker_cycles]` as 8 `u64`s.
const SLOT_BYTES: u64 = 64;
const OFF_STATE: u64 = 0;
const OFF_RET: u64 = 48;
const OFF_CYCLES: u64 = 56;

const STATE_FREE: u64 = 0;
const STATE_POSTED: u64 = 1;
const STATE_DONE: u64 = 2;

/// The boxed calling convention of the shared ring: the worker's
/// [`ThreadCtx`] plus four `u64` arguments, returning one `u64`.
pub type RingFn = Box<dyn Fn(&mut ThreadCtx, [u64; 4]) -> u64 + Send + Sync>;

/// An untrusted function callable through the RPC ring.
///
/// Receives the worker's [`ThreadCtx`] (so its memory traffic is
/// charged to the RPC cache partition) and four `u64` arguments,
/// returning one `u64`.
pub struct UntrustedFn {
    f: RingFn,
}

impl UntrustedFn {
    /// Wraps a closure.
    pub fn new(f: impl Fn(&mut ThreadCtx, [u64; 4]) -> u64 + Send + Sync + 'static) -> Self {
        Self { f: Box::new(f) }
    }
}

struct Shared {
    machine: Arc<SgxMachine>,
    registry: HashMap<u64, UntrustedFn>,
    ring: u64,
}

/// The Eleos RPC service: a shared job ring plus a worker thread pool.
pub struct RpcService {
    shared: Arc<Shared>,
    job_tx: Sender<Option<usize>>,
    slot_tx: Sender<usize>,
    slot_rx: Receiver<usize>,
    workers: Vec<JoinHandle<()>>,
}

/// Builder for [`RpcService`].
pub struct RpcBuilder {
    machine: Arc<SgxMachine>,
    registry: HashMap<u64, UntrustedFn>,
    n_slots: usize,
    worker_cores: Vec<usize>,
}

impl RpcBuilder {
    /// Registers `func_id` to execute `f` on a worker.
    #[must_use]
    pub fn register(mut self, func_id: u64, f: UntrustedFn) -> Self {
        self.registry.insert(func_id, f);
        self
    }

    /// Spawns `n` workers pinned to the given cores (cycled if fewer
    /// cores than workers are supplied).
    #[must_use]
    pub fn workers(mut self, n: usize, cores: &[usize]) -> Self {
        assert!(!cores.is_empty());
        self.worker_cores = (0..n).map(|i| cores[i % cores.len()]).collect();
        self
    }

    /// Sets the number of ring slots (defaults to 16).
    #[must_use]
    pub fn slots(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.n_slots = n;
        self
    }

    /// Builds the service and starts its workers.
    #[must_use]
    pub fn build(self) -> RpcService {
        let ring = self
            .machine
            .alloc_untrusted(self.n_slots * SLOT_BYTES as usize);
        self.machine
            .untrusted
            .fill(ring, self.n_slots * SLOT_BYTES as usize, 0);
        let shared = Arc::new(Shared {
            machine: Arc::clone(&self.machine),
            registry: self.registry,
            ring,
        });
        let (job_tx, job_rx) = unbounded::<Option<usize>>();
        let (slot_tx, slot_rx) = unbounded::<usize>();
        for i in 0..self.n_slots {
            slot_tx.send(i).expect("fresh channel");
        }
        let mut workers = Vec::new();
        for &core in &self.worker_cores {
            let shared = Arc::clone(&shared);
            let job_rx: Receiver<Option<usize>> = job_rx.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&shared, core, &job_rx);
            }));
        }
        RpcService {
            shared,
            job_tx,
            slot_tx,
            slot_rx,
            workers,
        }
    }
}

fn worker_loop(shared: &Shared, core: usize, job_rx: &Receiver<Option<usize>>) {
    let mut ctx = ThreadCtx::rpc_worker(&shared.machine, core);
    while let Ok(Some(slot)) = job_rx.recv() {
        let base = shared.ring + slot as u64 * SLOT_BYTES;
        // The worker reads the descriptor from untrusted memory with
        // charged accesses — this is the traffic CAT fences off.
        let mut desc = [0u8; 48];
        ctx.read_untrusted(base, &mut desc);
        let word = |i: usize| u64::from_le_bytes(desc[i * 8..i * 8 + 8].try_into().unwrap());
        debug_assert_eq!(word(0), STATE_POSTED);
        let func = word(1);
        let args = [word(2), word(3), word(4), word(5)];
        let start = ctx.now();
        let ret = match shared.registry.get(&func) {
            Some(f) => (f.f)(&mut ctx, args),
            None => panic!("RPC call to unregistered function {func}"),
        };
        let elapsed = ctx.now() - start;
        ctx.write_untrusted(base + OFF_RET, &ret.to_le_bytes());
        ctx.write_untrusted_raw(base + OFF_CYCLES, &elapsed.to_le_bytes());
        // Publish completion last.
        ctx.write_untrusted(base + OFF_STATE, &STATE_DONE.to_le_bytes());
        Stats::bump(&shared.machine.stats.rpc_calls);
        shared
            .machine
            .trace
            .record(ctx.now(), eleos_sim::trace::Event::RpcCall { func });
    }
}

impl RpcService {
    /// Starts building a service on `machine`.
    #[must_use]
    pub fn builder(machine: &Arc<SgxMachine>) -> RpcBuilder {
        RpcBuilder {
            machine: Arc::clone(machine),
            registry: HashMap::new(),
            n_slots: 16,
            worker_cores: vec![machine.core_count() - 1],
        }
    }

    /// Invokes `func_id(args)` on a worker *without exiting the
    /// enclave*, blocking (by polling) until the result is posted.
    ///
    /// The caller's clock advances by the enqueue/dequeue overhead plus
    /// the worker's measured execution time — the enclave thread really
    /// does wait out the call, it just never pays an exit.
    ///
    /// # Panics
    /// Panics if called from untrusted mode (use the host API or an
    /// OCALL there), or if `func_id` is unregistered.
    pub fn call(&self, ctx: &mut ThreadCtx, func_id: u64, args: [u64; 4]) -> u64 {
        assert!(
            ctx.in_enclave(),
            "exit-less RPC is for trusted code; call the host directly instead"
        );
        let slot = self.slot_rx.recv().expect("service alive");
        let base = self.shared.ring + slot as u64 * SLOT_BYTES;

        // Write the descriptor (charged: the enclave touches untrusted
        // memory), then hand the slot to a worker.
        let mut desc = [0u8; 48];
        desc[0..8].copy_from_slice(&STATE_POSTED.to_le_bytes());
        desc[8..16].copy_from_slice(&func_id.to_le_bytes());
        for (i, a) in args.iter().enumerate() {
            desc[16 + i * 8..24 + i * 8].copy_from_slice(&a.to_le_bytes());
        }
        ctx.write_untrusted(base + OFF_STATE, &desc);
        ctx.compute(self.shared.machine.cfg.costs.rpc_roundtrip);
        self.job_tx.send(Some(slot)).expect("workers alive");

        // Spin until completion. The flag poll is a cached read in the
        // steady state; the handoff cost is charged via `rpc_roundtrip`
        // and the blocked time via the worker's measured cycles. The
        // poll reads the flag directly (no LLC traffic) with backoff,
        // so the spinning caller does not starve the worker of the
        // simulator's locks.
        let mut state = [0u8; 8];
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            self.shared.machine.untrusted.read(base + OFF_STATE, &mut state);
            if u64::from_le_bytes(state) == STATE_DONE {
                break;
            }
            backoff.snooze();
        }
        let mut ret = [0u8; 8];
        ctx.read_untrusted(base + OFF_RET, &mut ret);
        let mut cycles = [0u8; 8];
        ctx.read_untrusted_raw(base + OFF_CYCLES, &mut cycles);
        ctx.compute(u64::from_le_bytes(cycles));

        // Recycle the slot.
        ctx.write_untrusted_raw(base + OFF_STATE, &STATE_FREE.to_le_bytes());
        self.slot_tx.send(slot).expect("service alive");
        u64::from_le_bytes(ret)
    }

    /// The machine this service runs on.
    #[must_use]
    pub fn machine(&self) -> &Arc<SgxMachine> {
        &self.shared.machine
    }
}

impl Drop for RpcService {
    fn drop(&mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.job_tx.send(None);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Well-known function ids for the host-OS syscalls; apps may register
/// more from 100 upward.
pub mod funcs {
    /// `recv(fd, buf, max_len)` -> length or `u64::MAX` (would block).
    pub const RECV: u64 = 1;
    /// `send(fd, buf, len)` -> length.
    pub const SEND: u64 = 2;
    /// `open(path_addr, path_len)` -> file fd.
    pub const OPEN: u64 = 3;
    /// `close(fd)` -> 0 or `u64::MAX`.
    pub const CLOSE: u64 = 4;
    /// `read(fd, buf, len)` -> length or `u64::MAX`.
    pub const READ: u64 = 5;
    /// `write(fd, buf, len)` -> length or `u64::MAX`.
    pub const WRITE: u64 = 6;
    /// `seek(fd, offset)` -> 0 or `u64::MAX`.
    pub const SEEK: u64 = 7;
    /// `fsize(fd)` -> size or `u64::MAX`.
    pub const FSIZE: u64 = 8;
    /// `unlink(path_addr, path_len)` -> 0 or `u64::MAX`.
    pub const UNLINK: u64 = 9;
    /// `poll(fd)` -> 1 ready / 0 empty.
    pub const POLL: u64 = 10;
}

/// Registers the standard socket syscalls ([`funcs`]) on a builder.
#[must_use]
pub fn with_syscalls(b: RpcBuilder, machine: &Arc<SgxMachine>) -> RpcBuilder {
    let m1 = Arc::clone(machine);
    let m2 = Arc::clone(machine);
    b.register(
        funcs::RECV,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            m1.host
                .recv(ctx, fd, args[1], args[2] as usize)
                .map_or(u64::MAX, |n| n as u64)
        }),
    )
    .register(
        funcs::SEND,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            m2.host.send(ctx, fd, args[1], args[2] as usize) as u64
        }),
    )
}

/// Registers the filesystem syscalls ([`funcs::OPEN`]..[`funcs::UNLINK`])
/// on a builder.
#[must_use]
pub fn with_fs(b: RpcBuilder, machine: &Arc<SgxMachine>) -> RpcBuilder {
    use eleos_enclave::fs::FileFd;
    let r = |e: Result<usize, eleos_enclave::fs::FsError>| e.map_or(u64::MAX, |v| v as u64);
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::OPEN,
        UntrustedFn::new(move |ctx, args| {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.open(ctx, &path).0 as u64
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::CLOSE,
        UntrustedFn::new(move |ctx, args| {
            m.fs.close(ctx, FileFd(args[0] as u32)).map_or(u64::MAX, |()| 0)
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::READ,
        UntrustedFn::new(move |ctx, args| {
            r(m.fs.read(ctx, FileFd(args[0] as u32), args[1], args[2] as usize))
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::WRITE,
        UntrustedFn::new(move |ctx, args| {
            r(m.fs.write(ctx, FileFd(args[0] as u32), args[1], args[2] as usize))
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::SEEK,
        UntrustedFn::new(move |ctx, args| {
            m.fs
                .seek(ctx, FileFd(args[0] as u32), args[1] as usize)
                .map_or(u64::MAX, |()| 0)
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::FSIZE,
        UntrustedFn::new(move |ctx, args| r(m.fs.size(ctx, FileFd(args[0] as u32)))),
    );
    let m = Arc::clone(machine);
    b.register(
        funcs::UNLINK,
        UntrustedFn::new(move |ctx, args| {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.unlink(ctx, &path).map_or(u64::MAX, |()| 0)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::MachineConfig;

    fn machine() -> Arc<SgxMachine> {
        SgxMachine::new(MachineConfig::tiny())
    }

    #[test]
    fn basic_call_returns_result() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, a| a[0] * a[1]))
            .workers(2, &[2, 3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        assert_eq!(svc.call(&mut t, 10, [6, 7, 0, 0]), 42);
        t.exit();
        assert_eq!(m.stats.snapshot().rpc_calls, 1);
    }

    #[test]
    fn rpc_does_not_exit_the_enclave() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 0))
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        for _ in 0..50 {
            svc.call(&mut t, 10, [0; 4]);
        }
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.enclave_exits, 0, "RPC must be exit-less");
        assert_eq!(d.ocalls, 0);
        assert_eq!(d.rpc_calls, 50);
        t.exit();
    }

    #[test]
    fn rpc_cheaper_than_ocall_for_short_calls() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 1))
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Warm up.
        svc.call(&mut t, 10, [0; 4]);
        let c0 = t.now();
        for _ in 0..20 {
            svc.call(&mut t, 10, [0; 4]);
        }
        let rpc = (t.now() - c0) / 20;
        let c1 = t.now();
        for _ in 0..20 {
            t.ocall(|_| 1u64);
        }
        let ocall = (t.now() - c1) / 20;
        assert!(
            rpc * 3 < ocall,
            "rpc {rpc} should be several times cheaper than ocall {ocall}"
        );
        t.exit();
    }

    #[test]
    fn syscalls_through_rpc() {
        let m = machine();
        let ut = ThreadCtx::untrusted(&m, 3);
        let fd = m.host.socket(&ut, 16 << 10);
        m.host.push_request(&ut, fd, b"ping");
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let buf = m.alloc_untrusted(256);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let n = svc.call(&mut t, funcs::RECV, [fd.0 as u64, buf, 256, 0]);
        assert_eq!(n, 4);
        let mut got = [0u8; 4];
        t.read_untrusted(buf, &mut got);
        assert_eq!(&got, b"ping");
        // Empty queue: would-block sentinel.
        let n = svc.call(&mut t, funcs::RECV, [fd.0 as u64, buf, 256, 0]);
        assert_eq!(n, u64::MAX);
        t.exit();
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let m = machine();
        let svc = Arc::new(
            RpcService::builder(&m)
                .register(10, UntrustedFn::new(|_c, a| a[0] + 1))
                .workers(2, &[2, 3])
                .slots(8)
                .build(),
        );
        let e = m.driver.create_enclave(&m, 64 * 4096);
        let mut handles = Vec::new();
        for core in 0..2usize {
            let m = Arc::clone(&m);
            let e = Arc::clone(&e);
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut t = ThreadCtx::for_enclave(&m, &e, core);
                t.enter();
                for i in 0..200u64 {
                    assert_eq!(svc.call(&mut t, 10, [i, 0, 0, 0]), i + 1);
                }
                t.exit();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.stats.snapshot().rpc_calls, 400);
    }

    #[test]
    fn file_io_through_rpc() {
        let m = machine();
        let svc = with_fs(RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let path_buf = m.alloc_untrusted(64);
        let data_buf = m.alloc_untrusted(256);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Exit-lessly: open, write, seek, size, read back, close.
        t.write_untrusted(path_buf, b"/tmp/sealed.log");
        let fd = svc.call(&mut t, funcs::OPEN, [path_buf, 15, 0, 0]);
        t.write_untrusted(data_buf, b"enclave wrote this");
        assert_eq!(svc.call(&mut t, funcs::WRITE, [fd, data_buf, 18, 0]), 18);
        assert_eq!(svc.call(&mut t, funcs::FSIZE, [fd, 0, 0, 0]), 18);
        assert_eq!(svc.call(&mut t, funcs::SEEK, [fd, 8, 0, 0]), 0);
        let n = svc.call(&mut t, funcs::READ, [fd, data_buf + 100, 64, 0]);
        assert_eq!(n, 10);
        let mut got = vec![0u8; 10];
        t.read_untrusted(data_buf + 100, &mut got);
        assert_eq!(&got, b"wrote this");
        assert_eq!(svc.call(&mut t, funcs::CLOSE, [fd, 0, 0, 0]), 0);
        assert_eq!(
            svc.call(&mut t, funcs::CLOSE, [fd, 0, 0, 0]),
            u64::MAX,
            "double close rejected"
        );
        assert_eq!(m.stats.snapshot().enclave_exits, 0, "file I/O was exit-less");
        t.exit();
    }

    #[test]
    #[should_panic(expected = "exit-less RPC is for trusted code")]
    fn rejects_untrusted_callers() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 0))
            .workers(1, &[3])
            .build();
        let mut t = ThreadCtx::untrusted(&m, 0);
        svc.call(&mut t, 10, [0; 4]);
    }
}
