//! Exit-less RPC for enclaves (Eleos §3.1).
//!
//! Instead of OCALLing (8k cycles of direct cost plus a TLB flush and
//! cache-state loss), the enclave writes a job descriptor into a shared
//! ring in *untrusted* memory and spins on its completion word; a pool
//! of worker threads in the owner process polls the ring, executes the
//! untrusted function (typically a system call) and posts the result
//! back. The enclave never leaves trusted mode.
//!
//! The ring is a bounded lock-free MPMC queue (Vyukov-style): every
//! slot carries a sequence number, enclave callers claim slots by
//! compare-and-swapping the head cursor, and workers claim posted slots
//! by compare-and-swapping the tail cursor — there is no channel, lock
//! or condition variable anywhere on the hot path. Workers poll with a
//! spin → yield → adaptive-sleep backoff so an idle pool costs little
//! host CPU while a busy one never sleeps.
//!
//! On top of the blocking [`RpcService::call`] the service exposes an
//! asynchronous API that amortizes the handoff cost across in-flight
//! jobs:
//!
//! - [`RpcService::call_async`] posts one job and returns an
//!   [`RpcFuture`] to redeem later;
//! - [`RpcService::submit_batch`] posts many jobs back-to-back — the
//!   first pays the full [`rpc_roundtrip`](eleos_sim::costs::CostModel)
//!   handoff, each subsequent post only the incremental
//!   [`rpc_post`](eleos_sim::costs::CostModel) — and
//!   [`RpcBatch::wait_all`] overlaps the caller's wait across every
//!   worker serving the batch.
//!
//! Two refinements from the paper are implemented:
//!
//! - **Cache partitioning** (§3.1): with
//!   [`SgxMachine::enable_cat`](eleos_enclave::machine::SgxMachine)
//!   workers are fenced into 25% of the LLC ways, so their I/O buffers
//!   stop evicting enclave state;
//! - **OCALL fallback**: long-blocking calls (the paper's `poll()`)
//!   should keep using OCALLs rather than burn a worker — see
//!   [`ThreadCtx::ocall`](eleos_enclave::thread::ThreadCtx::ocall).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use eleos_enclave::machine::{MachineConfig, SgxMachine};
//! use eleos_enclave::thread::ThreadCtx;
//! use eleos_rpc::{RpcService, UntrustedFn};
//!
//! let machine = SgxMachine::new(MachineConfig::tiny());
//! let svc = RpcService::builder(&machine)
//!     .register(7, UntrustedFn::new(|_ctx, args| args[0] + args[1]))
//!     .workers(1, &[3])
//!     .build();
//!
//! let enclave = machine.driver.create_enclave(&machine, 64 * 4096);
//! let mut t = ThreadCtx::for_enclave(&machine, &enclave, 0);
//! t.enter();
//! // Blocking call:
//! let sum = svc.call(&mut t, 7, [20, 22, 0, 0]);
//! assert_eq!(sum, 42);
//! // Batched: four adds in flight at once, one amortized handoff.
//! let reqs: Vec<_> = (0..4u64).map(|i| (7, [i, 10, 0, 0])).collect();
//! let rets = svc.submit_batch(&mut t, &reqs).wait_all(&mut t);
//! assert_eq!(rets, vec![10, 11, 12, 13]);
//! t.exit();
//! ```

pub mod channel;
pub mod libos;

pub use channel::EnclaveChannel;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use eleos_enclave::host::SendMode;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;
use eleos_sim::trace::Event;

/// Simulated-memory slot layout (one 64-byte line, mirroring a real
/// implementation): `[func][arg0..arg3][ret][worker_cycles][pad]`.
/// The control word (the slot's sequence number) lives host-side in
/// [`Slot::seq`]; its cache-line traffic is what `rpc_roundtrip` /
/// `rpc_post` charge for.
const SLOT_BYTES: u64 = 64;
const OFF_FUNC: u64 = 0;
const OFF_RET: u64 = 40;
const OFF_CYCLES: u64 = 48;
const DESC_BYTES: usize = 40;

/// Returned by a worker when the requested `func_id` has no registered
/// handler (also bumps the `rpc_errors` counter). Note the host syscall
/// shims reuse `u64::MAX` as their would-block/error value; check
/// `rpc_errors` to distinguish a routing failure from a syscall error.
pub const ERR_UNREGISTERED: u64 = u64::MAX;

/// The boxed calling convention of the shared ring: the worker's
/// [`ThreadCtx`] plus four `u64` arguments, returning one `u64`.
pub type RingFn = Box<dyn Fn(&mut ThreadCtx, [u64; 4]) -> u64 + Send + Sync>;

/// An untrusted function callable through the RPC ring.
///
/// Receives the worker's [`ThreadCtx`] (so its memory traffic is
/// charged to the RPC cache partition) and four `u64` arguments,
/// returning one `u64`.
pub struct UntrustedFn {
    f: RingFn,
}

impl UntrustedFn {
    /// Wraps a closure.
    pub fn new(f: impl Fn(&mut ThreadCtx, [u64; 4]) -> u64 + Send + Sync + 'static) -> Self {
        Self { f: Box::new(f) }
    }
}

/// Exponential spin → yield → sleep backoff for ring polling.
///
/// The first few rounds busy-spin (winning the common case where the
/// peer is one cache-line transfer away), the next few yield the time
/// slice, and from there on the poller sleeps with exponentially
/// growing, capped intervals so an idle worker pool costs ~nothing.
struct Backoff {
    step: u32,
}

/// How many raw `spin_loop` polls a slot-claim attempt may burn before
/// it must `yield_now` (counted in `rpc_idle_yields`). Small enough
/// that a contended producer on a single-CPU host cedes the time slice
/// quickly to whoever holds the claim.
const CLAIM_SPIN_LIMIT: u32 = 32;

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;
    const SLEEP_CAP_US: u64 = 64;

    fn new() -> Self {
        Self { step: 0 }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                core::hint::spin_loop();
            }
        } else if self.step <= Self::YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::YIELD_LIMIT).min(6);
            let us = (1u64 << exp).min(Self::SLEEP_CAP_US);
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Host-side control word of one ring slot (see the Vyukov protocol in
/// `docs/rpc-ring.md`). The sequence space is scaled by 4 so the three
/// phases of a lap can never collide with the next lap's "free" value,
/// even on a 1- or 2-slot ring: `seq == pos * 4` free,
/// `pos * 4 + 1` posted, `pos * 4 + 2` done,
/// `(pos + n_slots) * 4` freed for the next lap.
struct Slot {
    seq: AtomicU64,
}

/// Sequence value for "free, awaiting the producer of `pos`".
const fn seq_free(pos: u64) -> u64 {
    pos * 4
}

/// Sequence value for "descriptor posted at `pos`".
const fn seq_posted(pos: u64) -> u64 {
    pos * 4 + 1
}

/// Sequence value for "completion published for `pos`".
const fn seq_done(pos: u64) -> u64 {
    pos * 4 + 2
}

struct Shared {
    machine: Arc<SgxMachine>,
    registry: HashMap<u64, UntrustedFn>,
    /// Base of the descriptor array in simulated untrusted memory.
    ring: u64,
    /// Per-slot sequence words (the lock-free control plane).
    slots: Vec<Slot>,
    /// Enqueue cursor: the next position a caller will claim.
    head: AtomicU64,
    /// Dequeue cursor: the next position a worker will claim.
    tail: AtomicU64,
    /// Worker shutdown flag; workers drain posted jobs before exiting.
    stop: AtomicBool,
    n_workers: usize,
}

impl Shared {
    fn slot_base(&self, pos: u64) -> u64 {
        self.ring + (pos % self.slots.len() as u64) * SLOT_BYTES
    }
}

/// The Eleos RPC service: a lock-free shared job ring plus a polling
/// worker thread pool.
pub struct RpcService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Builder for [`RpcService`].
pub struct RpcBuilder {
    machine: Arc<SgxMachine>,
    registry: HashMap<u64, UntrustedFn>,
    n_slots: usize,
    worker_cores: Vec<usize>,
}

impl RpcBuilder {
    /// Registers `func_id` to execute `f` on a worker.
    #[must_use]
    pub fn register(mut self, func_id: u64, f: UntrustedFn) -> Self {
        self.registry.insert(func_id, f);
        self
    }

    /// Spawns `n` workers pinned to the given cores (cycled if fewer
    /// cores than workers are supplied).
    ///
    /// # Panics
    /// Panics if `n` is zero (a ring nobody polls deadlocks the first
    /// caller) or `cores` is empty.
    #[must_use]
    pub fn workers(mut self, n: usize, cores: &[usize]) -> Self {
        assert!(
            n > 0,
            "an RPC service needs at least one worker: nothing would ever poll the ring"
        );
        assert!(!cores.is_empty());
        self.worker_cores = (0..n).map(|i| cores[i % cores.len()]).collect();
        self
    }

    /// Sets the number of ring slots (defaults to 16).
    #[must_use]
    pub fn slots(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.n_slots = n;
        self
    }

    /// Builds the service and starts its workers.
    #[must_use]
    pub fn build(self) -> RpcService {
        let ring = self
            .machine
            .alloc_untrusted(self.n_slots * SLOT_BYTES as usize);
        self.machine
            .untrusted
            .fill(ring, self.n_slots * SLOT_BYTES as usize, 0);
        let slots = (0..self.n_slots as u64)
            .map(|i| Slot {
                seq: AtomicU64::new(seq_free(i)),
            })
            .collect();
        let shared = Arc::new(Shared {
            machine: Arc::clone(&self.machine),
            registry: self.registry,
            ring,
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            n_workers: self.worker_cores.len(),
        });
        let workers = self
            .worker_cores
            .iter()
            .map(|&core| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, core))
            })
            .collect();
        RpcService { shared, workers }
    }
}

/// Polls the ring for posted jobs and executes them until shutdown.
fn worker_loop(shared: &Shared, core: usize) {
    let mut ctx = ThreadCtx::rpc_worker(&shared.machine, core);
    let n = shared.slots.len() as u64;
    let mut backoff = Backoff::new();
    loop {
        let pos = shared.tail.load(Ordering::Acquire);
        let slot = &shared.slots[(pos % n) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == seq_posted(pos) {
            // A posted job: claim it by advancing the tail cursor.
            if shared
                .tail
                .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue; // another worker won the claim
            }
            backoff.reset();
            execute_job(shared, &mut ctx, core, pos);
        } else if seq == seq_free(pos) {
            // Nothing posted at the tail yet.
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            Stats::bump(&shared.machine.stats.rpc_idle_polls);
            backoff.snooze();
        } else {
            // Either the tail moved under us (reload resolves it) or
            // the slot at the tail is done-but-unreaped from the
            // previous lap — the ring is full of completions the
            // caller has yet to collect, which can last a while, so
            // back off rather than hot-spin (a raw spin here starves
            // the reaping caller on a single-CPU host).
            backoff.snooze();
        }
    }
}

/// Runs the job in slot `pos % n` and publishes its completion.
fn execute_job(shared: &Shared, ctx: &mut ThreadCtx, core: usize, pos: u64) {
    let n = shared.slots.len() as u64;
    let slot_idx = (pos % n) as usize;
    let base = shared.slot_base(pos);
    let trace = &shared.machine.trace;
    if trace.is_enabled() {
        trace.record(
            ctx.now(),
            Event::RpcClaim {
                slot: slot_idx,
                core,
            },
        );
    }
    // The worker reads the descriptor from untrusted memory with
    // charged accesses — this is the traffic CAT fences off.
    let mut desc = [0u8; DESC_BYTES];
    ctx.read_untrusted(base + OFF_FUNC, &mut desc);
    let word = |i: usize| u64::from_le_bytes(desc[i * 8..i * 8 + 8].try_into().unwrap());
    let func = word(0);
    let args = [word(1), word(2), word(3), word(4)];
    let start = ctx.now();
    let ret = match shared.registry.get(&func) {
        Some(f) => (f.f)(ctx, args),
        None => {
            Stats::bump(&shared.machine.stats.rpc_errors);
            ERR_UNREGISTERED
        }
    };
    let elapsed = ctx.now() - start;
    ctx.write_untrusted(base + OFF_RET, &ret.to_le_bytes());
    ctx.write_untrusted_raw(base + OFF_CYCLES, &elapsed.to_le_bytes());
    Stats::bump(&shared.machine.stats.rpc_calls);
    // Publish completion last: the result bytes must be visible before
    // the sequence word says "done".
    shared.slots[slot_idx]
        .seq
        .store(seq_done(pos), Ordering::Release);
    if trace.is_enabled() {
        let now = ctx.now();
        trace.record(now, Event::RpcCall { func });
        trace.record(
            now,
            Event::RpcComplete {
                slot: slot_idx,
                func,
            },
        );
    }
}

/// One in-flight exit-less RPC, redeemed with [`RpcFuture::wait`].
///
/// Dropping an unredeemed future blocks (host-side only, no simulated
/// cycles) until the worker finishes, then recycles the slot — the ring
/// never leaks capacity.
pub struct RpcFuture {
    shared: Arc<Shared>,
    /// The ring position this job was posted at.
    pos: u64,
    reaped: bool,
}

impl RpcFuture {
    /// Whether the worker has published this job's completion
    /// (host-side peek; charges no simulated cycles).
    #[must_use]
    pub fn is_done(&self) -> bool {
        let n = self.shared.slots.len() as u64;
        let seq = self.shared.slots[(self.pos % n) as usize]
            .seq
            .load(Ordering::Acquire);
        seq == seq_done(self.pos)
    }

    /// Blocks (by polling) until completion, charges the caller for the
    /// worker's measured execution time, and returns the result.
    pub fn wait(mut self, ctx: &mut ThreadCtx) -> u64 {
        let (ret, cycles) = self.reap(ctx);
        ctx.compute(cycles);
        ret
    }

    /// Waits for completion and collects `(ret, worker_cycles)` without
    /// charging the worker time — [`RpcBatch::wait_all`] overlaps those
    /// charges across the pool instead.
    fn reap(&mut self, ctx: &mut ThreadCtx) -> (u64, u64) {
        debug_assert!(!self.reaped);
        let n = self.shared.slots.len() as u64;
        let slot = &self.shared.slots[(self.pos % n) as usize];
        let mut backoff = Backoff::new();
        while slot.seq.load(Ordering::Acquire) != seq_done(self.pos) {
            backoff.snooze();
        }
        let base = self.shared.slot_base(self.pos);
        let mut ret = [0u8; 8];
        ctx.read_untrusted(base + OFF_RET, &mut ret);
        let mut cycles = [0u8; 8];
        ctx.read_untrusted_raw(base + OFF_CYCLES, &mut cycles);
        // Free the slot for the next lap.
        slot.seq.store(seq_free(self.pos + n), Ordering::Release);
        self.reaped = true;
        (u64::from_le_bytes(ret), u64::from_le_bytes(cycles))
    }
}

impl Drop for RpcFuture {
    fn drop(&mut self) {
        if self.reaped {
            return;
        }
        let n = self.shared.slots.len() as u64;
        let slot = &self.shared.slots[(self.pos % n) as usize];
        let mut backoff = Backoff::new();
        while slot.seq.load(Ordering::Acquire) != seq_done(self.pos) {
            backoff.snooze();
        }
        slot.seq.store(seq_free(self.pos + n), Ordering::Release);
    }
}

/// A set of in-flight RPCs posted by [`RpcService::submit_batch`].
pub struct RpcBatch {
    /// `(request index, future)` still in flight, in post order.
    pending: Vec<(usize, RpcFuture)>,
    /// Results by request index (filled as completions are reaped).
    results: Vec<Option<u64>>,
    /// Sum of the workers' measured cycles across reaped jobs.
    worker_cycles: u64,
    n_workers: usize,
    /// Caller's clock when submission finished; [`RpcBatch::wait_all`]
    /// only charges worker time not already covered by the caller's
    /// own progress since then.
    submitted_at: u64,
}

impl RpcBatch {
    /// Reaps every already-completed pending future; returns how many.
    fn reap_ready(&mut self, ctx: &mut ThreadCtx) -> usize {
        let mut reaped = 0;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].1.is_done() {
                let (idx, mut fut) = self.pending.swap_remove(i);
                let (ret, cycles) = fut.reap(ctx);
                self.results[idx] = Some(ret);
                self.worker_cycles += cycles;
                reaped += 1;
            } else {
                i += 1;
            }
        }
        reaped
    }

    /// Blocks until every job in the batch has completed, charging the
    /// caller the pool-parallel wait time (total worker cycles divided
    /// by the number of workers that could run concurrently), and
    /// returns the results in request order.
    ///
    /// The charge is overlap-aware: workers execute concurrently with
    /// the enclave from the moment of submission, so any cycles the
    /// caller has already spent computing since then come off the
    /// wait. A caller that defers the wait past enough of its own work
    /// (the paper's asynchronous exit-less calls, §3.1) pays nothing.
    pub fn wait_all(mut self, ctx: &mut ThreadCtx) -> Vec<u64> {
        let n_jobs = self.results.len();
        let mut backoff = Backoff::new();
        while !self.pending.is_empty() {
            if self.reap_ready(ctx) > 0 {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
        let lanes = self.n_workers.min(n_jobs).max(1) as u64;
        let overlapped = ctx.now().saturating_sub(self.submitted_at);
        ctx.compute((self.worker_cycles / lanes).saturating_sub(overlapped));
        self.results
            .into_iter()
            .map(|r| r.expect("all pending reaped"))
            .collect()
    }
}

impl RpcService {
    /// Number of worker threads polling the ring. Callers use this to
    /// pick a submission shape: per-message jobs parallelize across
    /// workers, while a single-worker service is better served by one
    /// scatter-gather job.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared.n_workers
    }

    /// Starts building a service on `machine`.
    #[must_use]
    pub fn builder(machine: &Arc<SgxMachine>) -> RpcBuilder {
        RpcBuilder {
            machine: Arc::clone(machine),
            registry: HashMap::new(),
            n_slots: 16,
            worker_cores: vec![machine.core_count() - 1],
        }
    }

    /// Claims a ring slot, writes the descriptor and publishes it.
    ///
    /// Blocks (with backoff) while the ring is full; `on_full` is
    /// called once per full-ring round so batch submission can drain
    /// its own completions instead of deadlocking.
    fn post(
        &self,
        ctx: &mut ThreadCtx,
        func_id: u64,
        args: [u64; 4],
        charge: u64,
        mut on_full: impl FnMut(&mut ThreadCtx),
    ) -> RpcFuture {
        assert!(
            ctx.in_enclave(),
            "exit-less RPC is for trusted code; call the host directly instead"
        );
        let shared = &self.shared;
        let n = shared.slots.len() as u64;
        let mut backoff = Backoff::new();
        let mut contended_polls = 0u32;
        let pos = loop {
            let pos = shared.head.load(Ordering::Acquire);
            let seq = shared.slots[(pos % n) as usize].seq.load(Ordering::Acquire);
            if seq == seq_free(pos) {
                if shared
                    .head
                    .compare_exchange_weak(pos, pos + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    break pos;
                }
            } else if seq < seq_free(pos) {
                // The slot is still held by a job from a previous lap:
                // the ring is full.
                Stats::bump(&shared.machine.stats.rpc_ring_full);
                on_full(ctx);
                backoff.snooze();
            } else {
                // Another producer claimed this position; reload. The
                // spin is bounded: on a 1-CPU host an unbounded hot
                // spin here starves the very thread that would free
                // the slot, so past a small threshold the claim
                // attempt cedes the CPU instead.
                contended_polls += 1;
                if contended_polls > CLAIM_SPIN_LIMIT {
                    Stats::bump(&shared.machine.stats.rpc_idle_yields);
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            }
        };

        // Write the descriptor (charged: the enclave touches untrusted
        // memory), then publish the slot's sequence word — the store
        // that a polling worker's Acquire load synchronizes with.
        let base = shared.slot_base(pos);
        let mut desc = [0u8; DESC_BYTES];
        desc[0..8].copy_from_slice(&func_id.to_le_bytes());
        for (i, a) in args.iter().enumerate() {
            desc[8 + i * 8..16 + i * 8].copy_from_slice(&a.to_le_bytes());
        }
        ctx.write_untrusted(base + OFF_FUNC, &desc);
        ctx.compute(charge);
        let trace = &shared.machine.trace;
        if trace.is_enabled() {
            let slot = (pos % n) as usize;
            trace.record(
                ctx.now(),
                Event::RpcPost {
                    slot,
                    func: func_id,
                },
            );
        }
        shared.slots[(pos % n) as usize]
            .seq
            .store(seq_posted(pos), Ordering::Release);
        RpcFuture {
            shared: Arc::clone(shared),
            pos,
            reaped: false,
        }
    }

    /// Invokes `func_id(args)` on a worker *without exiting the
    /// enclave*, blocking (by polling) until the result is posted.
    ///
    /// The caller's clock advances by the enqueue/dequeue overhead plus
    /// the worker's measured execution time — the enclave thread really
    /// does wait out the call, it just never pays an exit. Unregistered
    /// ids return [`ERR_UNREGISTERED`] and bump `rpc_errors`.
    ///
    /// # Panics
    /// Panics if called from untrusted mode (use the host API or an
    /// OCALL there).
    pub fn call(&self, ctx: &mut ThreadCtx, func_id: u64, args: [u64; 4]) -> u64 {
        self.call_async(ctx, func_id, args).wait(ctx)
    }

    /// Posts `func_id(args)` and immediately returns an [`RpcFuture`];
    /// the caller keeps executing in the enclave while the worker runs
    /// the job.
    ///
    /// # Panics
    /// Panics if called from untrusted mode.
    pub fn call_async(&self, ctx: &mut ThreadCtx, func_id: u64, args: [u64; 4]) -> RpcFuture {
        let charge = self.shared.machine.cfg.costs.rpc_roundtrip;
        self.post(ctx, func_id, args, charge, |_| {})
    }

    /// Posts a batch of `(func_id, args)` jobs back-to-back and returns
    /// an [`RpcBatch`] tracking them all.
    ///
    /// The first post pays the full `rpc_roundtrip` handoff; each
    /// subsequent post only the incremental `rpc_post` (the worker pool
    /// is already polling, so no fresh handoff stall is paid). Batches
    /// larger than the ring are fine: submission reaps its own
    /// completions whenever the ring fills.
    ///
    /// # Panics
    /// Panics if called from untrusted mode.
    pub fn submit_batch(&self, ctx: &mut ThreadCtx, reqs: &[(u64, [u64; 4])]) -> RpcBatch {
        let costs = &self.shared.machine.cfg.costs;
        let mut batch = RpcBatch {
            pending: Vec::with_capacity(reqs.len().min(self.shared.slots.len())),
            results: vec![None; reqs.len()],
            worker_cycles: 0,
            n_workers: self.shared.n_workers,
            submitted_at: 0,
        };
        Stats::bump(&self.shared.machine.stats.rpc_batches);
        for (idx, &(func_id, args)) in reqs.iter().enumerate() {
            let charge = if idx == 0 {
                costs.rpc_roundtrip
            } else {
                costs.rpc_post
            };
            // Split the borrow: `post` needs `&self`, the full-ring
            // callback drains completions owned by the batch.
            let pending = &mut batch.pending;
            let results = &mut batch.results;
            let worker_cycles = &mut batch.worker_cycles;
            let fut = self.post(ctx, func_id, args, charge, |ctx| {
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].1.is_done() {
                        let (done_idx, mut fut) = pending.swap_remove(i);
                        let (ret, cycles) = fut.reap(ctx);
                        results[done_idx] = Some(ret);
                        *worker_cycles += cycles;
                    } else {
                        i += 1;
                    }
                }
            });
            batch.pending.push((idx, fut));
        }
        batch.submitted_at = ctx.now();
        batch
    }

    /// The machine this service runs on.
    #[must_use]
    pub fn machine(&self) -> &Arc<SgxMachine> {
        &self.shared.machine
    }
}

impl Drop for RpcService {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Well-known function ids for the host-OS syscalls; apps may register
/// more from 100 upward.
pub mod funcs {
    /// `recv(fd, buf, max_len)` -> length or `u64::MAX` (would block).
    pub const RECV: u64 = 1;
    /// `send(fd, buf, len)` -> length.
    pub const SEND: u64 = 2;
    /// `open(path_addr, path_len)` -> file fd.
    pub const OPEN: u64 = 3;
    /// `close(fd)` -> 0 or `u64::MAX`.
    pub const CLOSE: u64 = 4;
    /// `read(fd, buf, len)` -> length or `u64::MAX`.
    pub const READ: u64 = 5;
    /// `write(fd, buf, len)` -> length or `u64::MAX`.
    pub const WRITE: u64 = 6;
    /// `seek(fd, offset)` -> 0 or `u64::MAX`.
    pub const SEEK: u64 = 7;
    /// `fsize(fd)` -> size or `u64::MAX`.
    pub const FSIZE: u64 = 8;
    /// `unlink(path_addr, path_len)` -> 0 or `u64::MAX`.
    pub const UNLINK: u64 = 9;
    /// `poll(fd)` -> 1 ready / 0 empty.
    pub const POLL: u64 = 10;
    /// `recv_tagged(fd, buf, max_len)` -> `(seq << 32) | len` or
    /// `u64::MAX` (would block). `seq` is the socket's dequeue
    /// sequence number, for restoring arrival order when several
    /// workers reap a batch out of order; `len` is capped well below
    /// 2^32 by the staging ring so the sentinel is unambiguous.
    pub const RECV_TAGGED: u64 = 11;
    /// `recv_mmsg(fd, buf, (stripe << 32) | max_msgs, desc)` ->
    /// message count. Scatter-gather receive into `stripe`-byte slots
    /// at `buf`; one 16-byte descriptor per message written at `desc`
    /// (two little-endian `u64` words: `(seq << 32) | len`, then the
    /// enqueue timestamp in cycles), where `seq` is the socket's
    /// dequeue sequence (so several sub-batches reaped by different
    /// workers can be merged back into arrival order); one kernel
    /// crossing and one kernel-metadata charge for the whole
    /// sub-batch.
    pub const RECV_MMSG: u64 = 12;
    /// `send_mmsg(fd, buf, (stripe << 32) | n_msgs, desc)` -> count.
    /// Scatter-gather counterpart of [`RECV_MMSG`] for transmit:
    /// `desc` holds 16-byte entries whose first word is
    /// `(seq << 32) | len` (the timestamp word is ignored), where
    /// `seq` is the transmit sequence; the host commits payloads to
    /// the wire strictly in `seq` order (a reorder buffer holds early
    /// arrivals), so parallel send sub-batches cannot reorder
    /// responses.
    pub const SEND_MMSG: u64 = 13;
    /// [`SEND_MMSG`] without transmit sequencing: payloads hit the
    /// wire in slot order and the descriptors' sequence words are
    /// ignored, skipping the reorder-buffer bookkeeping. For sharded
    /// servers where one pipeline owns the socket and slot order
    /// already *is* arrival order.
    pub const SEND_MMSG_UNSEQ: u64 = 14;
}

/// Runs `f` with the worker's cache context switched to the LLC shard
/// class registered for `fd` (if any): a sharded server registers each
/// shard's socket via `SgxMachine::set_shard_class`, so its kernel
/// traffic fills that shard's carved way slice instead of the common
/// RPC ways — two shards' socket streams stop evicting each other.
fn with_shard_class<R>(
    m: &SgxMachine,
    ctx: &mut ThreadCtx,
    fd: eleos_enclave::host::Fd,
    f: impl FnOnce(&mut ThreadCtx) -> R,
) -> R {
    match m.shard_class_of(fd.0) {
        Some(class) => {
            let prev = ctx.cache_ctx;
            ctx.cache_ctx = eleos_sim::llc::CacheCtx::Shard(class);
            let r = f(ctx);
            ctx.cache_ctx = prev;
            r
        }
        None => f(ctx),
    }
}

/// Registers the standard socket syscalls ([`funcs`]) on a builder.
#[must_use]
pub fn with_syscalls(b: RpcBuilder, machine: &Arc<SgxMachine>) -> RpcBuilder {
    let m1 = Arc::clone(machine);
    let m2 = Arc::clone(machine);
    let m3 = Arc::clone(machine);
    let m4 = Arc::clone(machine);
    let m5 = Arc::clone(machine);
    let m6 = Arc::clone(machine);
    b.register(
        funcs::RECV,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            m1.host
                .recv(ctx, fd, args[1], args[2] as usize)
                .map_or(u64::MAX, |n| n as u64)
        }),
    )
    .register(
        funcs::SEND,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            m2.host.send(ctx, fd, args[1], args[2] as usize) as u64
        }),
    )
    .register(
        funcs::RECV_TAGGED,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            m3.host
                .recv_tagged(ctx, fd, args[1], args[2] as usize)
                .map_or(u64::MAX, |(seq, n)| (seq << 32) | n as u64)
        }),
    )
    .register(
        funcs::RECV_MMSG,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            let (stripe, max) = ((args[2] >> 32) as usize, (args[2] & 0xffff_ffff) as usize);
            with_shard_class(&m4, ctx, fd, |ctx| {
                m4.host.recv_mmsg(ctx, fd, args[1], stripe, max, args[3]) as u64
            })
        }),
    )
    .register(
        funcs::SEND_MMSG,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            let (stripe, n) = ((args[2] >> 32) as usize, (args[2] & 0xffff_ffff) as usize);
            with_shard_class(&m5, ctx, fd, |ctx| {
                m5.host
                    .send_mmsg(ctx, fd, args[1], stripe, n, args[3], SendMode::Sequenced)
                    as u64
            })
        }),
    )
    .register(
        funcs::SEND_MMSG_UNSEQ,
        UntrustedFn::new(move |ctx, args| {
            let fd = eleos_enclave::host::Fd(args[0] as u32);
            let (stripe, n) = ((args[2] >> 32) as usize, (args[2] & 0xffff_ffff) as usize);
            with_shard_class(&m6, ctx, fd, |ctx| {
                m6.host
                    .send_mmsg(ctx, fd, args[1], stripe, n, args[3], SendMode::Unsequenced)
                    as u64
            })
        }),
    )
}

/// Registers the filesystem syscalls ([`funcs::OPEN`]..[`funcs::UNLINK`])
/// on a builder.
#[must_use]
pub fn with_fs(b: RpcBuilder, machine: &Arc<SgxMachine>) -> RpcBuilder {
    use eleos_enclave::fs::FileFd;
    let r = |e: Result<usize, eleos_enclave::fs::FsError>| e.map_or(u64::MAX, |v| v as u64);
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::OPEN,
        UntrustedFn::new(move |ctx, args| {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.open(ctx, &path).0 as u64
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::CLOSE,
        UntrustedFn::new(move |ctx, args| {
            m.fs.close(ctx, FileFd(args[0] as u32))
                .map_or(u64::MAX, |()| 0)
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::READ,
        UntrustedFn::new(move |ctx, args| {
            r(m.fs.read(ctx, FileFd(args[0] as u32), args[1], args[2] as usize))
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::WRITE,
        UntrustedFn::new(move |ctx, args| {
            r(m.fs.write(ctx, FileFd(args[0] as u32), args[1], args[2] as usize))
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::SEEK,
        UntrustedFn::new(move |ctx, args| {
            m.fs.seek(ctx, FileFd(args[0] as u32), args[1] as usize)
                .map_or(u64::MAX, |()| 0)
        }),
    );
    let m = Arc::clone(machine);
    let b = b.register(
        funcs::FSIZE,
        UntrustedFn::new(move |ctx, args| r(m.fs.size(ctx, FileFd(args[0] as u32)))),
    );
    let m = Arc::clone(machine);
    b.register(
        funcs::UNLINK,
        UntrustedFn::new(move |ctx, args| {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.unlink(ctx, &path).map_or(u64::MAX, |()| 0)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::MachineConfig;

    fn machine() -> Arc<SgxMachine> {
        SgxMachine::new(MachineConfig::tiny())
    }

    #[test]
    fn basic_call_returns_result() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, a| a[0] * a[1]))
            .workers(2, &[2, 3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        assert_eq!(svc.call(&mut t, 10, [6, 7, 0, 0]), 42);
        t.exit();
        assert_eq!(m.stats.snapshot().rpc_calls, 1);
    }

    #[test]
    fn rpc_does_not_exit_the_enclave() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 0))
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        for _ in 0..50 {
            svc.call(&mut t, 10, [0; 4]);
        }
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.enclave_exits, 0, "RPC must be exit-less");
        assert_eq!(d.ocalls, 0);
        assert_eq!(d.rpc_calls, 50);
        t.exit();
    }

    #[test]
    fn async_and_batched_paths_are_exitless_too() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, a| a[0]))
            .workers(2, &[2, 3])
            .slots(8)
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let s0 = m.stats.snapshot();
        let f = svc.call_async(&mut t, 10, [7, 0, 0, 0]);
        assert_eq!(f.wait(&mut t), 7);
        let reqs: Vec<_> = (0..20u64).map(|i| (10, [i, 0, 0, 0])).collect();
        let rets = svc.submit_batch(&mut t, &reqs).wait_all(&mut t);
        assert_eq!(rets, (0..20).collect::<Vec<u64>>());
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.enclave_exits, 0, "async RPC must be exit-less");
        assert_eq!(d.ocalls, 0);
        assert_eq!(d.rpc_calls, 21);
        assert_eq!(d.rpc_batches, 1);
        t.exit();
    }

    #[test]
    fn rpc_cheaper_than_ocall_for_short_calls() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 1))
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Warm up.
        svc.call(&mut t, 10, [0; 4]);
        let c0 = t.now();
        for _ in 0..20 {
            svc.call(&mut t, 10, [0; 4]);
        }
        let rpc = (t.now() - c0) / 20;
        let c1 = t.now();
        for _ in 0..20 {
            t.ocall(|_| 1u64);
        }
        let ocall = (t.now() - c1) / 20;
        assert!(
            rpc * 3 < ocall,
            "rpc {rpc} should be several times cheaper than ocall {ocall}"
        );
        t.exit();
    }

    #[test]
    fn batched_strictly_cheaper_per_op_than_sequential() {
        // The headline async win: 64 jobs posted in one batch cost the
        // caller strictly fewer cycles per op than 64 sequential calls.
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(
                10,
                UntrustedFn::new(|c, a| {
                    c.compute(200);
                    a[0]
                }),
            )
            .workers(2, &[2, 3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        svc.call(&mut t, 10, [0; 4]); // warm up

        let c0 = t.now();
        for i in 0..64u64 {
            assert_eq!(svc.call(&mut t, 10, [i, 0, 0, 0]), i);
        }
        let seq = t.now() - c0;

        let reqs: Vec<_> = (0..64u64).map(|i| (10, [i, 0, 0, 0])).collect();
        let c1 = t.now();
        let rets = svc.submit_batch(&mut t, &reqs).wait_all(&mut t);
        let batched = t.now() - c1;

        assert_eq!(rets, (0..64).collect::<Vec<u64>>());
        assert!(
            batched < seq,
            "batched 64-in-flight ({batched} cycles) must beat 64 sequential calls ({seq} cycles)"
        );
        t.exit();
    }

    #[test]
    fn unregistered_func_returns_error_sentinel() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 0))
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        assert_eq!(svc.call(&mut t, 999, [0; 4]), ERR_UNREGISTERED);
        // The service keeps working afterwards.
        assert_eq!(svc.call(&mut t, 10, [0; 4]), 0);
        t.exit();
        let s = m.stats.snapshot();
        assert_eq!(s.rpc_errors, 1);
        assert_eq!(s.rpc_calls, 2, "the failed call still counts as served");
    }

    #[test]
    fn batch_larger_than_ring_drains_itself() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, a| a[0] + 1))
            .workers(2, &[2, 3])
            .slots(4)
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let reqs: Vec<_> = (0..50u64).map(|i| (10, [i, 0, 0, 0])).collect();
        let rets = svc.submit_batch(&mut t, &reqs).wait_all(&mut t);
        assert_eq!(rets, (1..=50).collect::<Vec<u64>>());
        t.exit();
        assert_eq!(m.stats.snapshot().rpc_calls, 50);
    }

    #[test]
    fn syscalls_through_rpc() {
        let m = machine();
        let ut = ThreadCtx::untrusted(&m, 3);
        let fd = m.host.socket(&ut, 16 << 10);
        m.host.push_request(&ut, fd, b"ping");
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let buf = m.alloc_untrusted(256);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let n = svc.call(&mut t, funcs::RECV, [fd.0 as u64, buf, 256, 0]);
        assert_eq!(n, 4);
        let mut got = [0u8; 4];
        t.read_untrusted(buf, &mut got);
        assert_eq!(&got, b"ping");
        // Empty queue: would-block sentinel.
        let n = svc.call(&mut t, funcs::RECV, [fd.0 as u64, buf, 256, 0]);
        assert_eq!(n, u64::MAX);
        t.exit();
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let m = machine();
        let svc = Arc::new(
            RpcService::builder(&m)
                .register(10, UntrustedFn::new(|_c, a| a[0] + 1))
                .workers(2, &[2, 3])
                .slots(8)
                .build(),
        );
        let e = m.driver.create_enclave(&m, 64 * 4096);
        let mut handles = Vec::new();
        for core in 0..2usize {
            let m = Arc::clone(&m);
            let e = Arc::clone(&e);
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut t = ThreadCtx::for_enclave(&m, &e, core);
                t.enter();
                for i in 0..200u64 {
                    assert_eq!(svc.call(&mut t, 10, [i, 0, 0, 0]), i + 1);
                }
                t.exit();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.stats.snapshot().rpc_calls, 400);
    }

    #[test]
    fn ring_stress_no_lost_or_duplicated_completions() {
        // Many callers × a deliberately tiny ring: every echoed payload
        // must come back exactly once and the served-call counter must
        // equal the number of submissions.
        const CALLERS: usize = 4;
        const CALLS: u64 = 150;
        let mut cfg = MachineConfig::tiny();
        cfg.cores = 8; // one per caller + dedicated worker cores
        let m = SgxMachine::new(cfg);
        let svc = Arc::new(
            RpcService::builder(&m)
                .register(10, UntrustedFn::new(|_c, a| a[0] ^ 0xdead_beef))
                .workers(2, &[6, 7])
                .slots(2)
                .build(),
        );
        let e = m.driver.create_enclave(&m, 64 * 4096);
        let mut handles = Vec::new();
        for caller in 0..CALLERS {
            let m = Arc::clone(&m);
            let e = Arc::clone(&e);
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut t = ThreadCtx::for_enclave(&m, &e, caller);
                t.enter();
                // Mix sync calls, async singles and batches.
                for i in 0..CALLS {
                    let tag = (caller as u64) << 32 | i;
                    match i % 3 {
                        0 => {
                            assert_eq!(svc.call(&mut t, 10, [tag, 0, 0, 0]), tag ^ 0xdead_beef);
                        }
                        1 => {
                            let f = svc.call_async(&mut t, 10, [tag, 0, 0, 0]);
                            assert_eq!(f.wait(&mut t), tag ^ 0xdead_beef);
                        }
                        _ => {
                            let rets = svc
                                .submit_batch(&mut t, &[(10, [tag, 0, 0, 0])])
                                .wait_all(&mut t);
                            assert_eq!(rets, vec![tag ^ 0xdead_beef]);
                        }
                    }
                }
                t.exit();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = m.stats.snapshot();
        assert_eq!(
            s.rpc_calls,
            CALLERS as u64 * CALLS,
            "every submission served exactly once"
        );
        assert_eq!(s.rpc_errors, 0);
    }

    #[test]
    fn file_io_through_rpc() {
        let m = machine();
        let svc = with_fs(RpcService::builder(&m), &m)
            .workers(1, &[3])
            .build();
        let e = m.driver.create_enclave(&m, 16 * 4096);
        let path_buf = m.alloc_untrusted(64);
        let data_buf = m.alloc_untrusted(256);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Exit-lessly: open, write, seek, size, read back, close.
        t.write_untrusted(path_buf, b"/tmp/sealed.log");
        let fd = svc.call(&mut t, funcs::OPEN, [path_buf, 15, 0, 0]);
        t.write_untrusted(data_buf, b"enclave wrote this");
        assert_eq!(svc.call(&mut t, funcs::WRITE, [fd, data_buf, 18, 0]), 18);
        assert_eq!(svc.call(&mut t, funcs::FSIZE, [fd, 0, 0, 0]), 18);
        assert_eq!(svc.call(&mut t, funcs::SEEK, [fd, 8, 0, 0]), 0);
        let n = svc.call(&mut t, funcs::READ, [fd, data_buf + 100, 64, 0]);
        assert_eq!(n, 10);
        let mut got = vec![0u8; 10];
        t.read_untrusted(data_buf + 100, &mut got);
        assert_eq!(&got, b"wrote this");
        assert_eq!(svc.call(&mut t, funcs::CLOSE, [fd, 0, 0, 0]), 0);
        assert_eq!(
            svc.call(&mut t, funcs::CLOSE, [fd, 0, 0, 0]),
            u64::MAX,
            "double close rejected"
        );
        assert_eq!(
            m.stats.snapshot().enclave_exits,
            0,
            "file I/O was exit-less"
        );
        t.exit();
    }

    #[test]
    #[should_panic(expected = "exit-less RPC is for trusted code")]
    fn rejects_untrusted_callers() {
        let m = machine();
        let svc = RpcService::builder(&m)
            .register(10, UntrustedFn::new(|_c, _a| 0))
            .workers(1, &[3])
            .build();
        let mut t = ThreadCtx::untrusted(&m, 0);
        svc.call(&mut t, 10, [0; 4]);
    }
}
