//! A Graphene-flavoured libOS shim: POSIX-ish calls from trusted code.
//!
//! Graphene "conveniently allows system call invocation from the
//! enclave" (§5.1); Eleos integrates its RPC so the same calls go
//! exit-less. This shim is that integration point as a reusable layer:
//! every method takes plain Rust slices, does the SDK-style
//! marshalling (bounce buffers in untrusted memory) internally, and
//! routes the privileged half through either OCALLs
//! ([`SyscallMode::Ocall`] — vanilla Graphene) or the exit-less RPC
//! ring ([`SyscallMode::ExitLess`] — Graphene + Eleos).

use std::sync::Arc;

use eleos_enclave::fs::FileFd;
use eleos_enclave::host::Fd;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

use crate::{funcs, RpcService};

/// How the shim reaches the host kernel.
#[derive(Clone)]
pub enum SyscallMode {
    /// One enclave exit per syscall (vanilla Graphene / Intel SDK).
    Ocall,
    /// Through the Eleos RPC ring, never exiting.
    ExitLess(Arc<RpcService>),
}

/// The shim: syscall surface + a bounce buffer for marshalling.
pub struct LibOs {
    machine: Arc<SgxMachine>,
    mode: SyscallMode,
    bounce: u64,
    bounce_len: usize,
}

impl LibOs {
    /// Creates a shim with a `bounce_len`-byte marshalling buffer.
    #[must_use]
    pub fn new(machine: &Arc<SgxMachine>, mode: SyscallMode, bounce_len: usize) -> Self {
        Self {
            bounce: machine.alloc_untrusted(bounce_len.max(4096)),
            bounce_len: bounce_len.max(4096),
            machine: Arc::clone(machine),
            mode,
        }
    }

    /// Which mode the shim routes through.
    #[must_use]
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            SyscallMode::Ocall => "ocall",
            SyscallMode::ExitLess(_) => "exit-less",
        }
    }

    fn call3(&self, ctx: &mut ThreadCtx, func: u64, a: u64, b: u64, c: u64) -> u64 {
        match &self.mode {
            SyscallMode::ExitLess(svc) => svc.call(ctx, func, [a, b, c, 0]),
            SyscallMode::Ocall => {
                let m = Arc::clone(&self.machine);
                ctx.ocall(move |host_ctx| dispatch(&m, host_ctx, func, [a, b, c, 0]))
            }
        }
    }

    /// `open(2)` (creating if absent).
    pub fn open(&self, ctx: &mut ThreadCtx, path: &str) -> FileFd {
        assert!(path.len() <= self.bounce_len, "path exceeds bounce buffer");
        ctx.write_untrusted(self.bounce, path.as_bytes());
        FileFd(self.call3(ctx, funcs::OPEN, self.bounce, path.len() as u64, 0) as u32)
    }

    /// `close(2)`; returns whether the descriptor was valid.
    pub fn close(&self, ctx: &mut ThreadCtx, fd: FileFd) -> bool {
        self.call3(ctx, funcs::CLOSE, fd.0 as u64, 0, 0) == 0
    }

    /// `read(2)` into a trusted slice. Returns bytes read, or `None`
    /// on a bad descriptor.
    pub fn read(&self, ctx: &mut ThreadCtx, fd: FileFd, buf: &mut [u8]) -> Option<usize> {
        let want = buf.len().min(self.bounce_len);
        let r = self.call3(ctx, funcs::READ, fd.0 as u64, self.bounce, want as u64);
        if r == u64::MAX {
            return None;
        }
        let n = r as usize;
        ctx.read_untrusted(self.bounce, &mut buf[..n]);
        Some(n)
    }

    /// `write(2)` from a trusted slice. Returns bytes written, or
    /// `None` on a bad descriptor.
    pub fn write(&self, ctx: &mut ThreadCtx, fd: FileFd, data: &[u8]) -> Option<usize> {
        assert!(data.len() <= self.bounce_len, "write exceeds bounce buffer");
        ctx.write_untrusted(self.bounce, data);
        let r = self.call3(
            ctx,
            funcs::WRITE,
            fd.0 as u64,
            self.bounce,
            data.len() as u64,
        );
        (r != u64::MAX).then_some(r as usize)
    }

    /// `readv(2)`: scatter a read across several trusted slices with a
    /// *single* syscall round trip — the segments are coalesced into
    /// one bounce-buffer read and scattered inside the enclave.
    /// Returns total bytes read, or `None` on a bad descriptor.
    pub fn readv(&self, ctx: &mut ThreadCtx, fd: FileFd, bufs: &mut [&mut [u8]]) -> Option<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        assert!(total <= self.bounce_len, "readv exceeds bounce buffer");
        let r = self.call3(ctx, funcs::READ, fd.0 as u64, self.bounce, total as u64);
        if r == u64::MAX {
            return None;
        }
        let n = r as usize;
        let mut off = 0;
        for buf in bufs.iter_mut() {
            if off >= n {
                break;
            }
            let take = buf.len().min(n - off);
            ctx.read_untrusted(self.bounce + off as u64, &mut buf[..take]);
            off += take;
        }
        Some(n)
    }

    /// `writev(2)`: gather several trusted slices into one syscall
    /// round trip. Returns total bytes written, or `None` on a bad
    /// descriptor.
    pub fn writev(&self, ctx: &mut ThreadCtx, fd: FileFd, bufs: &[&[u8]]) -> Option<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        assert!(total <= self.bounce_len, "writev exceeds bounce buffer");
        let mut off = 0u64;
        for buf in bufs {
            ctx.write_untrusted(self.bounce + off, buf);
            off += buf.len() as u64;
        }
        let r = self.call3(ctx, funcs::WRITE, fd.0 as u64, self.bounce, total as u64);
        (r != u64::MAX).then_some(r as usize)
    }

    /// Receives up to `bufs.len()` messages in one *batched* exit-less
    /// submission: all `recv` jobs are posted to the ring back-to-back
    /// (amortizing the handoff) and their completions reaped together.
    /// Each message lands in its own bounce-buffer stripe, so workers
    /// can serve the jobs concurrently. In OCALL mode this degrades to
    /// one exit per message.
    ///
    /// Returns one entry per buffer: `Some(len)` for a received
    /// message, `None` for would-block.
    pub fn recv_many(
        &self,
        ctx: &mut ThreadCtx,
        sock: Fd,
        bufs: &mut [&mut [u8]],
    ) -> Vec<Option<usize>> {
        let svc = match &self.mode {
            SyscallMode::ExitLess(svc) => svc,
            SyscallMode::Ocall => {
                return bufs.iter_mut().map(|b| self.recv(ctx, sock, b)).collect();
            }
        };
        if bufs.is_empty() {
            return Vec::new();
        }
        let stripe = self.bounce_len / bufs.len();
        assert!(stripe > 0, "more recv buffers than bounce-buffer bytes");
        let reqs: Vec<(u64, [u64; 4])> = bufs
            .iter()
            .enumerate()
            .map(|(i, buf)| {
                let addr = self.bounce + (i * stripe) as u64;
                let want = buf.len().min(stripe) as u64;
                (funcs::RECV, [sock.0 as u64, addr, want, 0])
            })
            .collect();
        let rets = svc.submit_batch(ctx, &reqs).wait_all(ctx);
        rets.into_iter()
            .zip(bufs.iter_mut())
            .enumerate()
            .map(|(i, (r, buf))| {
                if r == u64::MAX {
                    return None;
                }
                let n = r as usize;
                ctx.read_untrusted(self.bounce + (i * stripe) as u64, &mut buf[..n]);
                Some(n)
            })
            .collect()
    }

    /// `lseek(2)` (`SEEK_SET`).
    pub fn seek(&self, ctx: &mut ThreadCtx, fd: FileFd, offset: usize) -> bool {
        self.call3(ctx, funcs::SEEK, fd.0 as u64, offset as u64, 0) == 0
    }

    /// File size, or `None` on a bad descriptor.
    pub fn fsize(&self, ctx: &mut ThreadCtx, fd: FileFd) -> Option<usize> {
        let r = self.call3(ctx, funcs::FSIZE, fd.0 as u64, 0, 0);
        (r != u64::MAX).then_some(r as usize)
    }

    /// `unlink(2)`; returns whether the path existed.
    pub fn unlink(&self, ctx: &mut ThreadCtx, path: &str) -> bool {
        ctx.write_untrusted(self.bounce, path.as_bytes());
        self.call3(ctx, funcs::UNLINK, self.bounce, path.len() as u64, 0) == 0
    }

    /// `recv(2)` into a trusted slice (`None` = would block).
    pub fn recv(&self, ctx: &mut ThreadCtx, sock: Fd, buf: &mut [u8]) -> Option<usize> {
        let want = buf.len().min(self.bounce_len);
        let r = self.call3(ctx, funcs::RECV, sock.0 as u64, self.bounce, want as u64);
        if r == u64::MAX {
            return None;
        }
        let n = r as usize;
        ctx.read_untrusted(self.bounce, &mut buf[..n]);
        Some(n)
    }

    /// `send(2)` from a trusted slice.
    pub fn send(&self, ctx: &mut ThreadCtx, sock: Fd, data: &[u8]) -> usize {
        assert!(data.len() <= self.bounce_len, "send exceeds bounce buffer");
        ctx.write_untrusted(self.bounce, data);
        self.call3(
            ctx,
            funcs::SEND,
            sock.0 as u64,
            self.bounce,
            data.len() as u64,
        ) as usize
    }

    /// `poll(2)`-lite: always via OCALL — a long-blocking call should
    /// not burn an RPC worker (§3.1).
    pub fn poll(&self, ctx: &mut ThreadCtx, sock: Fd) -> bool {
        ctx.ocall(move |host_ctx| {
            let machine = Arc::clone(&host_ctx.machine);
            machine.host.poll(host_ctx, sock)
        })
    }
}

/// The OCALL-side dispatcher: the same ABI the RPC workers implement,
/// executed inline in untrusted mode.
fn dispatch(m: &Arc<SgxMachine>, ctx: &mut ThreadCtx, func: u64, args: [u64; 4]) -> u64 {
    let fs_err = |e: Result<usize, eleos_enclave::fs::FsError>| e.map_or(u64::MAX, |v| v as u64);
    match func {
        funcs::RECV => m
            .host
            .recv(ctx, Fd(args[0] as u32), args[1], args[2] as usize)
            .map_or(u64::MAX, |n| n as u64),
        funcs::SEND => m
            .host
            .send(ctx, Fd(args[0] as u32), args[1], args[2] as usize) as u64,
        funcs::OPEN => {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.open(ctx, &path).0 as u64
        }
        funcs::CLOSE => {
            m.fs.close(ctx, FileFd(args[0] as u32))
                .map_or(u64::MAX, |()| 0)
        }
        funcs::READ => fs_err(m.fs.read(ctx, FileFd(args[0] as u32), args[1], args[2] as usize)),
        funcs::WRITE => fs_err(m.fs.write(ctx, FileFd(args[0] as u32), args[1], args[2] as usize)),
        funcs::SEEK => {
            m.fs.seek(ctx, FileFd(args[0] as u32), args[1] as usize)
                .map_or(u64::MAX, |()| 0)
        }
        funcs::FSIZE => fs_err(m.fs.size(ctx, FileFd(args[0] as u32))),
        funcs::UNLINK => {
            let mut path = vec![0u8; args[1] as usize];
            ctx.read_untrusted(args[0], &mut path);
            let path = String::from_utf8(path).expect("utf-8 path");
            m.fs.unlink(ctx, &path).map_or(u64::MAX, |()| 0)
        }
        other => panic!("unknown libOS syscall {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_fs, with_syscalls};
    use eleos_enclave::machine::MachineConfig;

    fn shims() -> (Arc<SgxMachine>, LibOs, LibOs, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let svc = Arc::new(
            with_fs(with_syscalls(crate::RpcService::builder(&m), &m), &m)
                .workers(1, &[3])
                .build(),
        );
        let e = m.driver.create_enclave(&m, 1 << 20);
        let ocall = LibOs::new(&m, SyscallMode::Ocall, 8192);
        let exitless = LibOs::new(&m, SyscallMode::ExitLess(svc), 8192);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (m, ocall, exitless, t)
    }

    #[test]
    fn file_io_identical_in_both_modes() {
        let (m, ocall, exitless, mut t) = shims();
        for (shim, path) in [(&ocall, "/a"), (&exitless, "/b")] {
            let fd = shim.open(&mut t, path);
            assert_eq!(shim.write(&mut t, fd, b"libos payload"), Some(13));
            assert_eq!(shim.fsize(&mut t, fd), Some(13));
            assert!(shim.seek(&mut t, fd, 6));
            let mut buf = [0u8; 16];
            assert_eq!(shim.read(&mut t, fd, &mut buf), Some(7));
            assert_eq!(&buf[..7], b"payload");
            assert!(shim.close(&mut t, fd));
            assert!(!shim.close(&mut t, fd), "double close");
            assert!(shim.unlink(&mut t, path));
            assert!(!shim.unlink(&mut t, path));
        }
        let _ = m;
        t.exit();
    }

    #[test]
    fn exit_less_mode_never_exits() {
        let (m, _ocall, exitless, mut t) = shims();
        m.stats.reset();
        let fd = exitless.open(&mut t, "/quiet");
        exitless.write(&mut t, fd, &[1u8; 4096]);
        let mut buf = [0u8; 4096];
        exitless.seek(&mut t, fd, 0);
        exitless.read(&mut t, fd, &mut buf);
        exitless.close(&mut t, fd);
        let s = m.stats.snapshot();
        assert_eq!(s.enclave_exits, 0);
        assert!(s.rpc_calls >= 5);
        t.exit();
    }

    #[test]
    fn ocall_mode_exits_per_syscall() {
        let (m, ocall, _exitless, mut t) = shims();
        m.stats.reset();
        let fd = ocall.open(&mut t, "/loud");
        ocall.write(&mut t, fd, b"x");
        ocall.close(&mut t, fd);
        let s = m.stats.snapshot();
        assert_eq!(s.enclave_exits, 3, "one exit per call");
        assert_eq!(s.rpc_calls, 0);
        t.exit();
    }

    #[test]
    fn vectored_file_io_both_modes() {
        let (m, ocall, exitless, mut t) = shims();
        for (shim, path) in [(&ocall, "/va"), (&exitless, "/vb")] {
            let fd = shim.open(&mut t, path);
            assert_eq!(
                shim.writev(&mut t, fd, &[b"head|", b"body|", b"tail"]),
                Some(14)
            );
            assert!(shim.seek(&mut t, fd, 0));
            let (mut a, mut b) = ([0u8; 5], [0u8; 9]);
            let mut bufs: [&mut [u8]; 2] = [&mut a, &mut b];
            assert_eq!(shim.readv(&mut t, fd, &mut bufs), Some(14));
            assert_eq!(&a, b"head|");
            assert_eq!(&b, b"body|tail");
            assert!(shim.close(&mut t, fd));
        }
        let _ = m;
        t.exit();
    }

    #[test]
    fn recv_many_batches_without_exits() {
        let (m, _ocall, exitless, mut t) = shims();
        let ut = ThreadCtx::untrusted(&m, 2);
        let sock = m.host.socket(&ut, 16 << 10);
        for i in 0..3u8 {
            m.host.push_request(&ut, sock, &[b'm', b'0' + i]);
        }
        m.stats.reset();
        let mut b: Vec<[u8; 8]> = vec![[0; 8]; 4];
        let mut bufs: Vec<&mut [u8]> = b.iter_mut().map(|x| &mut x[..]).collect();
        let lens = exitless.recv_many(&mut t, sock, &mut bufs);
        assert_eq!(lens, vec![Some(2), Some(2), Some(2), None]);
        for (i, buf) in b.iter().take(3).enumerate() {
            assert_eq!(&buf[..2], &[b'm', b'0' + i as u8]);
        }
        let s = m.stats.snapshot();
        assert_eq!(s.enclave_exits, 0, "batched recv stays exit-less");
        assert_eq!(s.rpc_calls, 4);
        assert_eq!(s.rpc_batches, 1);
        t.exit();
    }

    #[test]
    fn sockets_through_the_shim() {
        let (m, _ocall, exitless, mut t) = shims();
        let ut = ThreadCtx::untrusted(&m, 2);
        let sock = m.host.socket(&ut, 16 << 10);
        m.host.push_request(&ut, sock, b"inbound");
        let mut buf = [0u8; 32];
        assert_eq!(exitless.recv(&mut t, sock, &mut buf), Some(7));
        assert_eq!(&buf[..7], b"inbound");
        assert_eq!(exitless.recv(&mut t, sock, &mut buf), None, "drained");
        assert_eq!(exitless.send(&mut t, sock, b"outbound"), 8);
        assert_eq!(m.host.pop_response(sock).unwrap(), b"outbound");
        assert!(!exitless.poll(&mut t, sock));
        t.exit();
    }
}
