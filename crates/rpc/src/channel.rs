//! Exit-less cross-enclave channels for replication traffic.
//!
//! Two enclaves on the same machine cannot share EPC pages (each
//! enclave's linear space is its own), but they *can* both touch
//! untrusted memory without exiting — the same property the RPC ring
//! exploits, with an enclave on **both** ends instead of a host worker
//! on one. An [`EnclaveChannel`] is a bounded byte ring in untrusted
//! memory plus a host-side descriptor queue: the sender stages a
//! message with charged `write_untrusted` traffic and pays the
//! incremental `rpc_post` descriptor handoff per [`CHUNK_BYTES`]
//! chunk; the receiver reaps it with charged `read_untrusted` traffic.
//! No OCALL, no EEXIT, no host round-trip anywhere.
//!
//! The channel itself is **not** a confidentiality boundary — its
//! backing store is plain untrusted memory. Callers must only send
//! bytes that are already sealed end-to-end (the fleet tier sends
//! `eleos_core::snapshot` blobs whose sections are AES-GCM
//! ciphertext under a key both replicas share); the
//! channel moves ciphertext, exactly like the paper's sealed swap
//! moves ciphertext through the untrusted page cache.
//!
//! Flow control is deliberately fail-fast: replication traffic is
//! fence-paced (snapshot out, restore in, continue), so a full ring
//! means the fleet orchestration is broken, not that the sender
//! should wait.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;

/// Descriptor granularity: one `rpc_post` charge per started chunk,
/// mirroring the RPC ring's slot-sized handoffs.
pub const CHUNK_BYTES: usize = 4096;

/// One staged message: `kind` discriminates payload types (the fleet
/// uses it for snapshot vs. epoch messages), `at`/`len` locate the
/// payload in the ring.
struct Msg {
    kind: u8,
    at: usize,
    len: usize,
}

struct Inner {
    /// Ring write cursor (bytes, wraps at `cap`).
    tail: usize,
    /// Bytes currently staged (occupancy; the read cursor is implied
    /// by the front message's `at`).
    used: usize,
    msgs: VecDeque<Msg>,
}

/// A bounded exit-less byte channel between enclaves on one machine.
///
/// Multiple-producer, multiple-consumer in the host sense (the cursor
/// state is lock-protected), FIFO per channel. Clone the [`Arc`] to
/// hand both ends out.
pub struct EnclaveChannel {
    machine: Arc<SgxMachine>,
    /// Base of the staging ring in simulated untrusted memory.
    buf: u64,
    cap: usize,
    inner: Mutex<Inner>,
}

impl EnclaveChannel {
    /// Allocates a channel with a `cap`-byte untrusted staging ring.
    ///
    /// # Panics
    /// Panics when `cap` is zero.
    #[must_use]
    pub fn new(machine: &Arc<SgxMachine>, cap: usize) -> Arc<Self> {
        assert!(cap > 0, "a zero-capacity channel can never carry a message");
        let buf = machine.alloc_untrusted(cap);
        Arc::new(Self {
            machine: Arc::clone(machine),
            buf,
            cap,
            inner: Mutex::new(Inner {
                tail: 0,
                used: 0,
                msgs: VecDeque::new(),
            }),
        })
    }

    /// Ring capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Messages currently staged and unreceived.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.lock().msgs.len()
    }

    /// Stages `bytes` into the ring without leaving the enclave.
    ///
    /// Charges the sender the untrusted-memory write traffic plus one
    /// `rpc_post` per started [`CHUNK_BYTES`] chunk (the descriptor
    /// handoffs). Empty messages are legal (a pure `kind` signal) and
    /// cost one descriptor.
    ///
    /// # Panics
    /// Panics when called from untrusted mode (the host has no
    /// business on an enclave-to-enclave channel) or when the message
    /// does not fit next to what is already staged — replication is
    /// fence-paced, so overflow is an orchestration bug.
    pub fn send(&self, ctx: &mut ThreadCtx, kind: u8, bytes: &[u8]) {
        assert!(
            ctx.in_enclave(),
            "cross-enclave channels are for trusted code on both ends"
        );
        let mut inner = self.inner.lock();
        assert!(
            inner.used + bytes.len() <= self.cap,
            "cross-enclave channel full: {} staged + {} new > {} capacity",
            inner.used,
            bytes.len(),
            self.cap
        );
        let at = inner.tail;
        // Stage the payload, splitting at the ring's wrap point; the
        // write itself is charged untrusted-memory traffic.
        let first = (self.cap - at).min(bytes.len());
        if first > 0 {
            ctx.write_untrusted(self.buf + at as u64, &bytes[..first]);
        }
        if first < bytes.len() {
            ctx.write_untrusted(self.buf, &bytes[first..]);
        }
        // One descriptor handoff per started chunk (at least one, so a
        // bare signal still synchronizes).
        let chunks = bytes.len().div_ceil(CHUNK_BYTES).max(1);
        ctx.compute(self.machine.cfg.costs.rpc_post * chunks as u64);
        inner.tail = (at + bytes.len()) % self.cap;
        inner.used += bytes.len();
        inner.msgs.push_back(Msg {
            kind,
            at,
            len: bytes.len(),
        });
        Stats::bump(&self.machine.stats.xchan_msgs);
        Stats::add(&self.machine.stats.xchan_bytes, bytes.len() as u64);
    }

    /// Reaps the oldest staged message, if any, without leaving the
    /// enclave. Charges the receiver the untrusted-memory read
    /// traffic.
    ///
    /// # Panics
    /// Panics when called from untrusted mode.
    pub fn recv(&self, ctx: &mut ThreadCtx) -> Option<(u8, Vec<u8>)> {
        assert!(
            ctx.in_enclave(),
            "cross-enclave channels are for trusted code on both ends"
        );
        let mut inner = self.inner.lock();
        let msg = inner.msgs.pop_front()?;
        let mut bytes = vec![0u8; msg.len];
        let first = (self.cap - msg.at).min(msg.len);
        if first > 0 {
            ctx.read_untrusted(self.buf + msg.at as u64, &mut bytes[..first]);
        }
        if first < msg.len {
            ctx.read_untrusted(self.buf, &mut bytes[first..]);
        }
        inner.used -= msg.len;
        Some((msg.kind, bytes))
    }

    /// Stages `payload` as a bounded chunked transfer: one `begin_kind`
    /// descriptor message carrying `header` plus the transfer geometry,
    /// then `ceil(len / chunk_bytes)` `chunk_kind` messages. The fleet
    /// maintenance plane uses this to stream delta snapshots while the
    /// ring stays bounded at `chunk_bytes` granularity. Each chunk pays
    /// the usual staged-traffic charges plus the fixed `maint_chunk`
    /// descriptor bookkeeping, and bumps the `maint_chunks` stat.
    ///
    /// Returns the number of chunks staged (zero-length payloads stage
    /// a single empty chunk so the receiver's framing stays uniform).
    ///
    /// # Panics
    /// Panics under the same conditions as [`EnclaveChannel::send`],
    /// or when `chunk_bytes` is zero.
    pub fn send_chunked(
        &self,
        ctx: &mut ThreadCtx,
        begin_kind: u8,
        chunk_kind: u8,
        header: &[u8],
        payload: &[u8],
        chunk_bytes: usize,
    ) -> u32 {
        assert!(
            chunk_bytes > 0,
            "chunked transfers need a positive chunk size"
        );
        let nchunks = payload.len().div_ceil(chunk_bytes).max(1);
        let mut begin = Vec::with_capacity(header.len() + 16);
        begin.extend_from_slice(&(header.len() as u32).to_le_bytes());
        begin.extend_from_slice(header);
        begin.extend_from_slice(&(nchunks as u32).to_le_bytes());
        begin.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.send(ctx, begin_kind, &begin);
        for chunk in payload.chunks(chunk_bytes) {
            self.send(ctx, chunk_kind, chunk);
            ctx.compute(self.machine.cfg.costs.maint_chunk);
            Stats::bump(&self.machine.stats.maint_chunks);
        }
        if payload.is_empty() {
            self.send(ctx, chunk_kind, &[]);
            ctx.compute(self.machine.cfg.costs.maint_chunk);
            Stats::bump(&self.machine.stats.maint_chunks);
        }
        nchunks as u32
    }

    /// Reaps one chunked transfer staged with
    /// [`EnclaveChannel::send_chunked`], reassembling the payload.
    /// Returns `None` when the ring is empty; the `(header, payload)`
    /// pair otherwise.
    ///
    /// # Panics
    /// Panics when the front of the ring is not a well-formed transfer
    /// (wrong kinds or a truncated chunk sequence) — interleaving
    /// other traffic into an in-flight transfer is an orchestration
    /// bug, exactly like ring overflow.
    pub fn recv_chunked(
        &self,
        ctx: &mut ThreadCtx,
        begin_kind: u8,
        chunk_kind: u8,
    ) -> Option<(Vec<u8>, Vec<u8>)> {
        let (kind, begin) = self.recv(ctx)?;
        assert_eq!(kind, begin_kind, "expected a chunked-transfer descriptor");
        let hlen = u32::from_le_bytes(begin[..4].try_into().expect("framing")) as usize;
        let header = begin[4..4 + hlen].to_vec();
        let nchunks = u32::from_le_bytes(begin[4 + hlen..8 + hlen].try_into().expect("framing"));
        let total = u64::from_le_bytes(begin[8 + hlen..16 + hlen].try_into().expect("framing"));
        let mut payload = Vec::with_capacity(total as usize);
        for _ in 0..nchunks {
            let (kind, chunk) = self.recv(ctx).expect("truncated chunked transfer");
            assert_eq!(
                kind, chunk_kind,
                "foreign message inside a chunked transfer"
            );
            payload.extend_from_slice(&chunk);
            ctx.compute(self.machine.cfg.costs.maint_chunk);
        }
        assert_eq!(
            payload.len() as u64,
            total,
            "chunked transfer length mismatch"
        );
        Some((header, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::MachineConfig;

    fn rig() -> (Arc<SgxMachine>, ThreadCtx, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let a = m.driver.create_enclave(&m, 64 * 4096);
        let b = m.driver.create_enclave(&m, 64 * 4096);
        let mut ta = ThreadCtx::for_enclave(&m, &a, 0);
        let mut tb = ThreadCtx::for_enclave(&m, &b, 1);
        ta.enter();
        tb.enter();
        (m, ta, tb)
    }

    #[test]
    fn round_trips_bytes_in_fifo_order() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 64 << 10);
        ch.send(&mut ta, 1, b"sealed snapshot bytes");
        ch.send(&mut ta, 2, b"epoch 7");
        assert_eq!(ch.pending(), 2);
        assert_eq!(
            ch.recv(&mut tb),
            Some((1, b"sealed snapshot bytes".to_vec()))
        );
        assert_eq!(ch.recv(&mut tb), Some((2, b"epoch 7".to_vec())));
        assert_eq!(ch.recv(&mut tb), None);
        let s = m.stats.snapshot();
        assert_eq!(s.xchan_msgs, 2);
        assert_eq!(s.xchan_bytes, 21 + 7);
    }

    #[test]
    fn transfer_is_exitless() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 64 << 10);
        let s0 = m.stats.snapshot();
        let blob = vec![0xa5u8; 20 << 10]; // several chunks
        ch.send(&mut ta, 3, &blob);
        assert_eq!(ch.recv(&mut tb).expect("staged").1, blob);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.enclave_exits, 0, "channel traffic must be exit-less");
        assert_eq!(d.ocalls, 0);
        assert_eq!(d.xchan_bytes, 20 << 10);
    }

    #[test]
    fn wraps_around_the_ring_boundary() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 1024);
        // Advance the cursor near the end, drain, then send a message
        // that must split across the wrap point.
        ch.send(&mut ta, 0, &[1u8; 900]);
        assert_eq!(ch.recv(&mut tb).expect("staged").1.len(), 900);
        let msg: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        ch.send(&mut ta, 0, &msg);
        assert_eq!(ch.recv(&mut tb), Some((0, msg)));
    }

    #[test]
    fn empty_message_is_a_pure_signal() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 1024);
        let before = ta.now();
        ch.send(&mut ta, 9, &[]);
        assert!(ta.now() > before, "even a bare signal pays its descriptor");
        assert_eq!(ch.recv(&mut tb), Some((9, Vec::new())));
        assert_eq!(m.stats.snapshot().xchan_bytes, 0);
    }

    #[test]
    fn chunked_transfers_bound_the_ring_and_reassemble() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 8 << 10);
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        let n = ch.send_chunked(&mut ta, 4, 5, b"hdr", &payload, 2048);
        assert_eq!(n, 3);
        assert_eq!(m.stats.snapshot().maint_chunks, 3);
        let (hdr, got) = ch.recv_chunked(&mut tb, 4, 5).expect("staged");
        assert_eq!(hdr, b"hdr");
        assert_eq!(got, payload);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn chunked_transfer_of_an_empty_payload_round_trips() {
        let (m, mut ta, mut tb) = rig();
        let ch = EnclaveChannel::new(&m, 1024);
        let n = ch.send_chunked(&mut ta, 4, 5, b"epoch", &[], 256);
        assert_eq!(n, 1);
        let (hdr, got) = ch.recv_chunked(&mut tb, 4, 5).expect("staged");
        assert_eq!(hdr, b"epoch");
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "cross-enclave channel full")]
    fn overflow_fails_fast() {
        let (m, mut ta, _tb) = rig();
        let ch = EnclaveChannel::new(&m, 256);
        ch.send(&mut ta, 0, &[0u8; 200]);
        ch.send(&mut ta, 0, &[0u8; 100]);
    }

    #[test]
    #[should_panic(expected = "for trusted code on both ends")]
    fn rejects_untrusted_senders() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let ch = EnclaveChannel::new(&m, 256);
        let mut t = ThreadCtx::untrusted(&m, 0);
        ch.send(&mut t, 0, b"nope");
    }
}
